package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/alloc"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/mitigation"
	"repro/internal/numa"
	"repro/internal/subarray"
)

// Hypervisor is a booted system: simulated DRAM plus the Siloz (or
// baseline) memory-management state built at boot (§5.3).
type Hypervisor struct {
	cfg    Config
	mode   Mode
	mem    *dram.Memory
	layout *subarray.Layout
	topo   *numa.Topology
	reg    *numa.Registry

	allocators map[int]*alloc.Allocator // node ID -> allocator
	eptNodes   map[int]int              // socket -> EPT node ID (Siloz)
	offlined   []subarray.Range
	guardBytes uint64 // CATT guard-band capacity currently reserved (under mu)
	stats      *statCache
	log        io.Writer
	logMu      sync.Mutex
	bootTime   time.Time
	coreOwner  map[int]string // logical core -> pinned VM

	// mu serializes VM lifecycle (create/destroy/pin) and guards the vms
	// and coreOwner maps. Per-VM data paths (WriteGuest/ReadGuest) and the
	// migration engine's copy rounds do not take it, so guest traffic and
	// live migration proceed concurrently with lifecycle operations.
	mu  sync.Mutex
	vms map[string]*VM

	// lifecycleProbe, when set, observes the transient windows inside
	// lifecycle operations (see the Probe* event constants). Deterministic
	// adversarial campaigns hook it to attack an operation mid-flight
	// without racing real goroutines against it.
	lifecycleProbe func(event string, vm *VM)
}

// Lifecycle-probe events, fired at the sensitive instants adversarial
// campaigns target. Probes run on the lifecycle operation's own goroutine
// — often with h.mu and/or the vCPU gate held exclusively — so they must
// restrict themselves to non-blocking introspection (TranslateUncached,
// Memory() reads/activations) or hand work to other goroutines without
// waiting on them.
const (
	// ProbeBalloonUnmapped fires during a balloon inflate after the
	// surrendered EPT leaves are unmapped (and device IOMMU entries
	// dropped) but before the backing frames are scrubbed and freed. The
	// guest is paused; the frames still hold its data but are only
	// reachable physically.
	ProbeBalloonUnmapped = "balloon.unmapped"
	// ProbeBalloonDrained fires after the surrendered frames have been
	// scrubbed and returned to their node's allocator, before drained
	// nodes leave the VM's control group.
	ProbeBalloonDrained = "balloon.drained"
	// ProbeHotplugAdopted fires during a memory hotplug after destination
	// frames are allocated (possibly from freshly-adopted subarray-group
	// nodes) but before the scrub-before-map pass. The guest is running
	// but the new range is not yet mapped.
	ProbeHotplugAdopted = "hotplug.adopted"
)

// SetLifecycleProbe installs (or clears, with nil) the lifecycle probe.
// Install it before the operations of interest start; the hook is read
// without synchronization on the lifecycle paths.
func (h *Hypervisor) SetLifecycleProbe(p func(event string, vm *VM)) { h.lifecycleProbe = p }

// probe fires the lifecycle probe, if installed.
func (h *Hypervisor) probe(event string, vm *VM) {
	if h.lifecycleProbe != nil {
		h.lifecycleProbe(event, vm)
	}
}

// Boot initializes a hypervisor in the given mode. It performs Siloz's
// early-boot sequence (§5.3): compute subarray group address ranges from the
// platform's physical-to-media mapping, provision a logical NUMA node per
// group, offline guard and isolation-hazard pages, and carve the
// guard-protected EPT row-group block.
func Boot(cfg Config, mode Mode) (*Hypervisor, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Mitigation.IsolatesSubarrayGroups() && mode != ModeSiloz {
		return nil, fmt.Errorf("core: mitigation %q requires ModeSiloz, got %s",
			cfg.Mitigation.Name(), mode)
	}
	mem, err := dram.NewMemory(cfg.Geometry, cfg.Mapper, cfg.Profiles, cfg.Repairs)
	if err != nil {
		return nil, err
	}
	if spec := cfg.Mitigation; spec.HasRowDefense() {
		// One defense instance per DRAM module, each with its own seeded
		// RNG stream — per-DIMM hardware state, deterministic per scope.
		dimms := cfg.Geometry.DIMMsPerSocket
		mem.AttachDefense(func(socket, dimm, banks int) mitigation.Mitigation {
			d, derr := spec.RowDefense(banks, mitigation.ScopeSeed(spec.Seed, socket*dimms+dimm))
			if derr != nil {
				return nil // unreachable post-Validate; leave undefended
			}
			return d
		})
	}
	h := &Hypervisor{
		cfg:        cfg,
		mode:       mode,
		mem:        mem,
		topo:       &numa.Topology{},
		allocators: make(map[int]*alloc.Allocator),
		eptNodes:   make(map[int]int),
		vms:        make(map[string]*VM),
	}
	if cfg.Log != nil {
		h.setLog(cfg.Log)
	}
	h.logf("booting %s on %s", mode, cfg.Geometry)
	var layout *subarray.Layout
	if cfg.CachedLayout != nil {
		// Reuse ranges computed on a previous boot; fall back to full
		// recomputation if the cache does not match this boot (§5.3).
		layout, err = subarray.Load(cfg.CachedLayout, cfg.Geometry, cfg.Mapper)
	}
	if layout == nil || err != nil {
		layout, err = subarray.NewLayoutForModule(cfg.Geometry, cfg.Mapper, cfg.Profiles[0].Transforms)
		if err != nil {
			return nil, err
		}
	}
	h.layout = layout

	if mode == ModeSiloz {
		err = h.bootSiloz()
	} else {
		err = h.bootBaseline()
	}
	if err != nil {
		return nil, err
	}
	h.reg = numa.NewRegistry(h.topo)
	var offlinedBytes uint64
	for _, r := range h.OfflinedRanges() {
		offlinedBytes += r.Bytes()
	}
	h.logf("boot complete: %d logical nodes (%d rows/group, %.2f GiB groups), %d bytes offlined",
		len(h.topo.Nodes()), h.layout.RowsPerGroup(),
		float64(h.layout.GroupBytes())/(1<<30), offlinedBytes)
	return h, nil
}

// BootMitigated boots with the mode the configured mitigation implies:
// KindSiloz runs the Siloz hypervisor, every other kind runs the baseline
// (PARA/Silver Bullet act at the DRAM layer, CATT at allocation, none is
// the undefended control). It is the single entry point head-to-head
// evaluations use so each matrix row gets the topology its defense assumes.
func BootMitigated(cfg Config) (*Hypervisor, error) {
	mode := ModeBaseline
	if cfg.Mitigation.IsolatesSubarrayGroups() {
		mode = ModeSiloz
	}
	return Boot(cfg, mode)
}

// bootSiloz builds the logical node topology with isolation enabled.
func (h *Hypervisor) bootSiloz() error {
	g := h.cfg.Geometry
	transforms := h.cfg.Profiles[0].Transforms

	// Offline rows that violate isolation: artificial-boundary guards
	// (§6) and inter-subarray repaired rows (§6).
	var hazardRows []int
	hazardRows = append(hazardRows, h.layout.BoundaryGuardRows(transforms)...)
	repairRows := subarray.RepairOfflineRows(g, h.cfg.Repairs, transforms)
	rowSet := make(map[int]bool)
	for _, r := range hazardRows {
		rowSet[r] = true
	}
	for _, rows := range repairRows {
		for _, r := range rows {
			rowSet[r] = true
		}
	}
	allRows := make([]int, 0, len(rowSet))
	for r := range rowSet {
		allRows = append(allRows, r)
	}
	sort.Ints(allRows)
	offline, err := h.layout.OfflineRangesForRows(allRows)
	if err != nil {
		return err
	}
	h.offlined = offline

	for s := 0; s < g.Sockets; s++ {
		if err := h.provisionSocket(s, offline); err != nil {
			return err
		}
	}
	return nil
}

// provisionSocket creates the socket's host node (with the EPT block carved
// out of its first group), EPT node, and guest-reserved nodes.
func (h *Hypervisor) provisionSocket(socket int, offline []subarray.Range) error {
	g := h.cfg.Geometry
	hostGroups := h.cfg.HostGroupsPerSocket
	if hostGroups >= h.layout.GroupsPerSocket() {
		return fmt.Errorf("core: host groups (%d) must leave at least one guest group of %d",
			hostGroups, h.layout.GroupsPerSocket())
	}

	// EPT row-group block (§5.4): row groups [0, b) of the socket's
	// first (host) subarray group; the row group at offset o stores
	// EPTs, the rest are guards.
	hostGroup := h.layout.Group(socket, 0)
	blockFirst := hostGroup.FirstRow
	var blockRanges, eptRanges, guardRanges []subarray.Range
	for i := 0; i < EPTBlockRowGroups; i++ {
		rows := []int{blockFirst + i}
		rs, err := h.layout.OfflineRangesForRows(rows)
		if err != nil {
			return err
		}
		// OfflineRangesForRows covers every socket; keep this one's.
		rs = subarray.Intersect(rs, hostGroup.Ranges)
		blockRanges = append(blockRanges, rs...)
		if i == EPTRowGroupOffset {
			eptRanges = append(eptRanges, rs...)
		} else {
			guardRanges = append(guardRanges, rs...)
		}
	}
	blockRanges = subarray.Coalesce(blockRanges)
	h.offlined = append(h.offlined, guardRanges...)

	cores := make([]int, g.CoresPerSocket)
	for i := range cores {
		cores[i] = socket*g.CoresPerSocket + i
	}

	// Host-reserved node: the first HostGroupsPerSocket groups minus the
	// EPT block and any offlined isolation hazards — nodes never own
	// offlined memory.
	var hostRanges []subarray.Range
	groups := make([]int, 0, hostGroups)
	for gi := 0; gi < hostGroups; gi++ {
		hostRanges = append(hostRanges, h.layout.Group(socket, gi).Ranges...)
		groups = append(groups, gi)
	}
	hostRanges = subarray.Subtract(hostRanges, blockRanges)
	hostRanges = subarray.Subtract(hostRanges, offline)
	hostNode, err := h.topo.AddNode(&numa.Node{
		Kind: numa.HostReserved, Socket: socket, Groups: groups,
		Ranges: hostRanges, Cores: cores,
	})
	if err != nil {
		return err
	}
	if err := h.addAllocator(hostNode, nil); err != nil {
		return err
	}

	// EPT node: the single EPT row group (§5.4).
	eptNode, err := h.topo.AddNode(&numa.Node{
		Kind: numa.EPTReserved, Socket: socket,
		Ranges: subarray.Coalesce(eptRanges),
	})
	if err != nil {
		return err
	}
	if err := h.addAllocator(eptNode, nil); err != nil {
		return err
	}
	h.eptNodes[socket] = eptNode.ID

	// Guest-reserved nodes: one per remaining subarray group, memory
	// only (§5.2), minus offlined hazards.
	for gi := hostGroups; gi < h.layout.GroupsPerSocket(); gi++ {
		grp := h.layout.Group(socket, gi)
		n, err := h.topo.AddNode(&numa.Node{
			Kind: numa.GuestReserved, Socket: socket, Groups: []int{gi},
			Ranges: subarray.Subtract(grp.Ranges, offline),
		})
		if err != nil {
			return err
		}
		if err := h.addAllocator(n, nil); err != nil {
			return err
		}
	}
	return nil
}

// bootBaseline builds the unmodified-Linux topology: one host node per
// socket owning the whole socket; no offlining; EPTs from host memory.
func (h *Hypervisor) bootBaseline() error {
	g := h.cfg.Geometry
	for s := 0; s < g.Sockets; s++ {
		var ranges []subarray.Range
		groups := make([]int, h.layout.GroupsPerSocket())
		for gi := 0; gi < h.layout.GroupsPerSocket(); gi++ {
			ranges = append(ranges, h.layout.Group(s, gi).Ranges...)
			groups[gi] = gi
		}
		cores := make([]int, g.CoresPerSocket)
		for i := range cores {
			cores[i] = s*g.CoresPerSocket + i
		}
		n, err := h.topo.AddNode(&numa.Node{
			Kind: numa.HostReserved, Socket: s, Groups: groups,
			Ranges: subarray.Coalesce(ranges), Cores: cores,
		})
		if err != nil {
			return err
		}
		if err := h.addAllocator(n, nil); err != nil {
			return err
		}
	}
	return nil
}

func (h *Hypervisor) addAllocator(n *numa.Node, offline []subarray.Range) error {
	a, err := alloc.New(n.Ranges, offline)
	if err != nil {
		return err
	}
	h.allocators[n.ID] = a
	return nil
}

// Mode returns the hypervisor configuration.
func (h *Hypervisor) Mode() Mode { return h.mode }

// Memory returns the simulated DRAM.
func (h *Hypervisor) Memory() *dram.Memory { return h.mem }

// Layout returns the boot-time subarray group layout.
func (h *Hypervisor) Layout() *subarray.Layout { return h.layout }

// Topology returns the logical NUMA topology.
func (h *Hypervisor) Topology() *numa.Topology { return h.topo }

// Registry returns the control-group registry.
func (h *Hypervisor) Registry() *numa.Registry { return h.reg }

// Allocator returns the allocator of a logical node.
func (h *Hypervisor) Allocator(nodeID int) (*alloc.Allocator, error) {
	a, ok := h.allocators[nodeID]
	if !ok {
		return nil, fmt.Errorf("core: no allocator for node %d", nodeID)
	}
	return a, nil
}

// OfflinedRanges returns the physical ranges removed from allocatable
// memory at boot (EPT guards, artificial-boundary guards, repaired rows).
func (h *Hypervisor) OfflinedRanges() []subarray.Range {
	return subarray.Coalesce(h.offlined)
}

// MitigationBlockedBytes returns the capacity the deployed mitigation makes
// unallocatable: boot-time offlining (Siloz guard rows, repairs) plus
// currently-reserved CATT guard bands. It is the blocked-capacity axis of
// the protection-vs-overhead matrix.
func (h *Hypervisor) MitigationBlockedBytes() uint64 {
	var total uint64
	for _, r := range h.OfflinedRanges() {
		total += r.Bytes()
	}
	h.mu.Lock()
	total += h.guardBytes
	h.mu.Unlock()
	return total
}

// EPTNode returns the socket's EPT-reserved node (Siloz only).
func (h *Hypervisor) EPTNode(socket int) (*numa.Node, error) {
	id, ok := h.eptNodes[socket]
	if !ok {
		return nil, fmt.Errorf("core: no EPT node on socket %d (mode %s)", socket, h.mode)
	}
	return h.topo.Node(id)
}

// eptAllocatorFor returns the allocator EPT table pages come from, modelling
// KVM's kmalloc with the new GFP_EPT flag (§5.4): under Siloz with guard-row
// protection it draws from the socket's EPT node; otherwise from the
// socket's host node.
func (h *Hypervisor) eptAllocatorFor(socket int) (*alloc.Allocator, error) {
	if h.mode == ModeSiloz && h.cfg.EPTProtection == ept.GuardRows {
		id, ok := h.eptNodes[socket]
		if !ok {
			return nil, fmt.Errorf("core: missing EPT node for socket %d", socket)
		}
		return h.Allocator(id)
	}
	host := h.topo.NodesOnSocket(socket, numa.HostReserved)
	if len(host) == 0 {
		return nil, fmt.Errorf("core: no host node on socket %d", socket)
	}
	return h.Allocator(host[0].ID)
}

// AllocHostPages allocates pages for host software (kernel, processes,
// mediated VM pages) from the socket's host-reserved node (§5.1).
func (h *Hypervisor) AllocHostPages(socket, order, n int) ([]uint64, error) {
	host := h.topo.NodesOnSocket(socket, numa.HostReserved)
	if len(host) == 0 {
		return nil, fmt.Errorf("core: no host node on socket %d", socket)
	}
	a, err := h.Allocator(host[0].ID)
	if err != nil {
		return nil, err
	}
	return a.AllocPages(order, n)
}

// FreeHostPages releases host pages.
func (h *Hypervisor) FreeHostPages(socket, order int, pages []uint64) error {
	host := h.topo.NodesOnSocket(socket, numa.HostReserved)
	if len(host) == 0 {
		return fmt.Errorf("core: no host node on socket %d", socket)
	}
	a, err := h.Allocator(host[0].ID)
	if err != nil {
		return err
	}
	for _, pa := range pages {
		if err := a.Free(pa, order); err != nil {
			return err
		}
	}
	return nil
}

// VM returns a created VM by name.
func (h *Hypervisor) VM(name string) (*VM, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	vm, ok := h.vms[name]
	return vm, ok
}

// VMs returns all VMs sorted by name.
func (h *Hypervisor) VMs() []*VM {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.vms))
	for n := range h.vms {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*VM, len(names))
	for i, n := range names {
		out[i] = h.vms[n]
	}
	return out
}

// Shutdown kills every VM and releases its resources. Host shutdown needs
// no Siloz-specific handling (§5.3): the privileged routine is free to kill
// any process and its resources, ignoring active subarray group and logical
// node constraints.
func (h *Hypervisor) Shutdown() {
	for _, vm := range h.VMs() {
		_ = h.DestroyVM(vm.Name())
	}
	h.logf("host shutdown complete")
}

// InternalMapperFor exposes a module's internal address mapping, the
// simulation's stand-in for Siloz's address-translation drivers (§5.3).
func (h *Hypervisor) InternalMapperFor(socket, dimm int) *addr.InternalMapper {
	return h.mem.Module(socket, dimm).InternalMapper()
}
