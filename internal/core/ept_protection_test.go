package core

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
)

// denseProfile makes every row densely populated with weak cells so that
// hammering a neighbour row deterministically corrupts any cache line in
// it — standing in for the memory templating a real attacker performs.
func denseProfile() dram.Profile {
	p := testProfile()
	p.WeakCellsPerRow = 600
	return p
}

func denseConfig(mode ept.IntegrityMode) Config {
	cfg := testConfig()
	cfg.Profiles = []dram.Profile{denseProfile()}
	cfg.EPTProtection = mode
	return cfg
}

// hammerEPTNeighbours hammers the rows physically adjacent to the row
// backing the VM's first PD entry (the attacker's Flip-Feng-Shui position).
func hammerEPTNeighbours(t *testing.T, h *Hypervisor, vm *VM) {
	t.Helper()
	mem := h.Memory()
	pd := vm.Tables().Pages()[2] // root, PDPT, PD
	ma, err := mem.Mapper().Decode(pd)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []int{ma.Row - 1, ma.Row + 1} {
		if row < 0 || row >= h.Layout().Geometry().RowsPerBank {
			continue
		}
		aggr, err := mem.Mapper().Encode(geometry.MediaAddr{Bank: ma.Bank, Row: row, Col: 0})
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.ActivatePhys(aggr, 20000, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBaselineEPTBitFlipsEnableEscape(t *testing.T) {
	// §5.4 threat model: in the baseline, EPT pages sit in ordinary
	// rows; a VM hammering its neighbourhood flips EPT bits and the walk
	// silently follows the corrupted mapping.
	h, err := Boot(denseConfig(ept.NoProtection), ModeBaseline)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "evil", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[uint64]uint64)
	for gpa := uint64(0); gpa < vm.Spec().MemoryBytes; gpa += geometry.PageSize2M {
		hpa, err := vm.TranslateUncached(gpa)
		if err != nil {
			t.Fatal(err)
		}
		before[gpa] = hpa
	}
	hammerEPTNeighbours(t, h, vm)

	changed := false
	for gpa, want := range before {
		hpa, err := vm.TranslateUncached(gpa)
		if err != nil || hpa != want {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("EPT corruption had no effect on translation; baseline threat not reproduced")
	}
}

func TestSecureEPTDetectsHammeredEntries(t *testing.T) {
	// §5.4 hardware-based protection: integrity checks detect — not
	// prevent — EPT corruption, so the walk faults instead of escaping.
	h, err := Boot(denseConfig(ept.SecureEPT), ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "evil", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	hammerEPTNeighbours(t, h, vm)

	sawIntegrityFault := false
	for gpa := uint64(0); gpa < vm.Spec().MemoryBytes; gpa += geometry.PageSize2M {
		if _, err := vm.TranslateUncached(gpa); err != nil {
			sawIntegrityFault = true
			break
		}
	}
	if !sawIntegrityFault {
		t.Fatal("secure EPT never faulted despite hammered table rows")
	}
}

func TestGuardRowsPreventEPTBitFlips(t *testing.T) {
	// §5.4/§7.1 software-based protection: with EPTs in the guarded row
	// group, the nearest rows an attacker can allocate are beyond the
	// blast radius; translations stay intact and no EPT row flips.
	h, err := Boot(denseConfig(ept.GuardRows), ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "evil", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[uint64]uint64)
	for gpa := uint64(0); gpa < vm.Spec().MemoryBytes; gpa += geometry.PageSize2M {
		hpa, err := vm.TranslateUncached(gpa)
		if err != nil {
			t.Fatal(err)
		}
		before[gpa] = hpa
	}

	// The attacker hammers the closest rows it can possibly own: the
	// first allocatable rows after the EPT block, plus its own memory
	// edges. None are within blast radius of the EPT row group.
	mem := h.Memory()
	g := h.Layout().Geometry()
	eptNode, err := h.EPTNode(0)
	if err != nil {
		t.Fatal(err)
	}
	eptPA := eptNode.Ranges[0].Start
	ma, err := mem.Mapper().Decode(eptPA)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []int{EPTBlockRowGroups, EPTBlockRowGroups + 1} {
		aggr, err := mem.Mapper().Encode(geometry.MediaAddr{Bank: ma.Bank, Row: row, Col: 0})
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.ActivatePhys(aggr, 100000, 0); err != nil {
			t.Fatal(err)
		}
	}
	attackEdges(t, h, vm, 20000)

	// No flip may land in the EPT row group.
	eptRow := ma.Row
	if eptRow != EPTRowGroupOffset {
		t.Fatalf("EPT row = %d, want %d", eptRow, EPTRowGroupOffset)
	}
	for _, f := range mem.Flips() {
		if f.MediaRow == eptRow && f.Bank.Socket == 0 {
			t.Errorf("flip reached the EPT row: %v", f)
		}
	}
	// Translations are unchanged.
	for gpa, want := range before {
		hpa, err := vm.TranslateUncached(gpa)
		if err != nil {
			t.Fatalf("translate %#x: %v", gpa, err)
		}
		if hpa != want {
			t.Fatalf("translation of %#x changed: %#x -> %#x", gpa, want, hpa)
		}
	}
	_ = g
}

// TestGuardRowBlockStopsInBlockHammering reproduces the §7.1 EPT experiment
// shape directly: hammering unprotected rows in the same subarray group
// flips bits, while the 32-row protected block around the EPT row absorbs
// everything an aggressor outside it can do.
func TestGuardRowBlockStopsInBlockHammering(t *testing.T) {
	h, err := Boot(denseConfig(ept.GuardRows), ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	mem := h.Memory()
	// Unprotected rows in the host group (rows >= 32): hammering row 40
	// flips rows 38-42.
	hostPA := func(row int) uint64 {
		ma, err := mem.Mapper().Decode(0)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := mem.Mapper().Encode(geometry.MediaAddr{Bank: ma.Bank, Row: row, Col: 0})
		if err != nil {
			t.Fatal(err)
		}
		return pa
	}
	if err := mem.ActivatePhys(hostPA(40), 20000, 0); err != nil {
		t.Fatal(err)
	}
	unprotectedFlips := 0
	for _, f := range mem.Flips() {
		if f.MediaRow >= EPTBlockRowGroups {
			unprotectedFlips++
		}
		if f.MediaRow == EPTRowGroupOffset {
			t.Errorf("flip in EPT row from row-40 aggressor: %v", f)
		}
	}
	if unprotectedFlips == 0 {
		t.Fatal("no flips in unprotected rows; experiment vacuous")
	}
}
