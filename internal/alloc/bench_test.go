package alloc

import (
	"testing"

	"repro/internal/subarray"
)

func BenchmarkAllocFree2M(b *testing.B) {
	a, err := New([]subarray.Range{{Start: 0, End: 1 << 30}}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa, err := a.Alloc(Order2M)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(pa, Order2M); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocChurn4K(b *testing.B) {
	a, err := New([]subarray.Range{{Start: 0, End: 256 << 20}}, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Steady state: keep a bounded live set, alternating alloc and free.
	const maxLive = 4096
	var live []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(live) >= maxLive || (i%3 == 2 && len(live) > 0) {
			pa := live[len(live)-1]
			live = live[:len(live)-1]
			if err := a.Free(pa, 0); err != nil {
				b.Fatal(err)
			}
			continue
		}
		pa, err := a.Alloc(0)
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, pa)
	}
}
