// Package alloc implements a per-node physical page allocator: a binary
// buddy system over the physical address ranges a logical NUMA node owns,
// supporting 4 KiB base pages through 1 GiB blocks, boot-time page
// offlining (guard rows, repaired rows, §5.4/§6), and the reserved
// huge-page pools cloud deployments back guests with (§5, "Deployment
// Environment").
package alloc

import (
	"fmt"
	"sync"

	"repro/internal/geometry"
	"repro/internal/subarray"
)

const (
	// BasePageShift is log2 of the base page size (4 KiB).
	BasePageShift = 12
	// MaxOrder is the largest block order (order 18 = 1 GiB).
	MaxOrder = 18
	// Order2M is the order of a 2 MiB huge page.
	Order2M = 9
	// Order1G is the order of a 1 GiB huge page.
	Order1G = 18
)

// OrderBytes returns the size of an order-o block.
func OrderBytes(o int) uint64 { return 1 << (BasePageShift + o) }

// OrderFor returns the smallest order whose block covers n bytes.
func OrderFor(n uint64) int {
	for o := 0; o <= MaxOrder; o++ {
		if OrderBytes(o) >= n {
			return o
		}
	}
	return MaxOrder
}

// ErrNoMemory is returned when the allocator cannot satisfy a request.
var ErrNoMemory = fmt.Errorf("alloc: out of memory")

// freeList is one order's free blocks as an address-ordered min-heap with
// an index map for O(log n) removal. Lowest-address-first allocation gives
// VMs ascending, physically-contiguous regions — matching the static
// contiguous guest allocation of the paper's deployment environment (§5.4).
type freeList struct {
	blocks []uint64
	index  map[uint64]int
}

func newFreeList() *freeList {
	return &freeList{index: make(map[uint64]int)}
}

func (f *freeList) swap(i, j int) {
	f.blocks[i], f.blocks[j] = f.blocks[j], f.blocks[i]
	f.index[f.blocks[i]] = i
	f.index[f.blocks[j]] = j
}

func (f *freeList) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if f.blocks[parent] <= f.blocks[i] {
			break
		}
		f.swap(i, parent)
		i = parent
	}
}

func (f *freeList) down(i int) {
	n := len(f.blocks)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && f.blocks[l] < f.blocks[min] {
			min = l
		}
		if r < n && f.blocks[r] < f.blocks[min] {
			min = r
		}
		if min == i {
			return
		}
		f.swap(i, min)
		i = min
	}
}

func (f *freeList) push(pa uint64) {
	f.index[pa] = len(f.blocks)
	f.blocks = append(f.blocks, pa)
	f.up(len(f.blocks) - 1)
}

// pop removes and returns the lowest-address block.
func (f *freeList) pop() (uint64, bool) {
	if len(f.blocks) == 0 {
		return 0, false
	}
	pa := f.blocks[0]
	f.removeAt(0)
	return pa, true
}

func (f *freeList) remove(pa uint64) bool {
	i, ok := f.index[pa]
	if !ok {
		return false
	}
	f.removeAt(i)
	return true
}

func (f *freeList) removeAt(i int) {
	last := len(f.blocks) - 1
	pa := f.blocks[i]
	f.swap(i, last)
	f.blocks = f.blocks[:last]
	delete(f.index, pa)
	if i < last {
		f.down(i)
		f.up(i)
	}
}

func (f *freeList) len() int { return len(f.blocks) }

// Allocator is a buddy allocator over a set of physical ranges. All methods
// are safe for concurrent use: node allocators are shared — host nodes serve
// every VM's mediated pages and the EPT node serves every table hierarchy on
// its socket — so parallel VM lifecycle operations contend on them.
type Allocator struct {
	mu      sync.Mutex
	free    [MaxOrder + 1]*freeList
	total   uint64 // managed bytes (after offlining)
	used    uint64
	version uint64 // bumped on every state change
}

// Version returns a counter incremented by every allocation and free; node
// statistics readers use it to skip nodes whose state cannot have changed
// (§5.3).
func (a *Allocator) Version() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.version
}

// New builds an allocator over ranges, excluding any overlap with offline
// (offlined pages are never allocatable, §5.4). Ranges must be base-page
// aligned.
func New(ranges, offline []subarray.Range) (*Allocator, error) {
	a := &Allocator{}
	for o := range a.free {
		a.free[o] = newFreeList()
	}
	usable := subarray.Subtract(ranges, offline)
	for _, r := range usable {
		if r.Start%OrderBytes(0) != 0 || r.End%OrderBytes(0) != 0 {
			return nil, fmt.Errorf("alloc: range %v not page aligned", r)
		}
		a.seed(r)
	}
	return a, nil
}

// seed covers a range greedily with maximal naturally-aligned blocks.
func (a *Allocator) seed(r subarray.Range) {
	pa := r.Start
	for pa < r.End {
		o := MaxOrder
		for o > 0 && (pa%OrderBytes(o) != 0 || pa+OrderBytes(o) > r.End) {
			o--
		}
		a.free[o].push(pa)
		a.total += OrderBytes(o)
		pa += OrderBytes(o)
	}
}

// Alloc returns a naturally-aligned free block of the given order. Among
// all free blocks large enough, the lowest-addressed one is split, so
// sequences of allocations walk the address space in ascending order.
func (a *Allocator) Alloc(order int) (uint64, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("alloc: invalid order %d", order)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	o := -1
	var best uint64
	for cand := order; cand <= MaxOrder; cand++ {
		if a.free[cand].len() == 0 {
			continue
		}
		if head := a.free[cand].blocks[0]; o == -1 || head < best {
			o, best = cand, head
		}
	}
	if o == -1 {
		return 0, ErrNoMemory
	}
	pa, _ := a.free[o].pop()
	// Split down to the requested order, freeing upper halves.
	for o > order {
		o--
		a.free[o].push(pa + OrderBytes(o))
	}
	a.used += OrderBytes(order)
	a.version++
	return pa, nil
}

// AllocAt claims the specific order-sized block at pa, which must be
// naturally aligned. The containing free block (of this order or larger)
// is split down keeping the half that covers pa, exactly inverting Free's
// coalescing. It wraps ErrNoMemory when pa is offline, already allocated,
// or outside the managed ranges — callers placing guard bands around
// tenant extents (CATT) treat that as "this side already guarded".
func (a *Allocator) AllocAt(pa uint64, order int) error {
	if order < 0 || order > MaxOrder {
		return fmt.Errorf("alloc: invalid order %d", order)
	}
	if pa%OrderBytes(order) != 0 {
		return fmt.Errorf("alloc: pa %#x not aligned to order %d", pa, order)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for o := order; o <= MaxOrder; o++ {
		block := pa &^ (OrderBytes(o) - 1)
		if !a.free[o].remove(block) {
			continue
		}
		// Split down to the requested order, keeping the half that
		// contains pa and freeing the other.
		for o > order {
			o--
			half := block + OrderBytes(o)
			if pa >= half {
				a.free[o].push(block)
				block = half
			} else {
				a.free[o].push(half)
			}
		}
		a.used += OrderBytes(order)
		a.version++
		return nil
	}
	return fmt.Errorf("alloc: block %#x order %d not free: %w", pa, order, ErrNoMemory)
}

// Free returns a block to the allocator, coalescing with free buddies.
func (a *Allocator) Free(pa uint64, order int) error {
	if order < 0 || order > MaxOrder {
		return fmt.Errorf("alloc: invalid order %d", order)
	}
	if pa%OrderBytes(order) != 0 {
		return fmt.Errorf("alloc: pa %#x not aligned to order %d", pa, order)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.used -= OrderBytes(order)
	a.version++
	for order < MaxOrder {
		buddy := pa ^ OrderBytes(order)
		if !a.free[order].remove(buddy) {
			break
		}
		if buddy < pa {
			pa = buddy
		}
		order++
	}
	a.free[order].push(pa)
	return nil
}

// FreePages returns a batch of same-order pages to the allocator — the
// balloon deflation path's bulk release. It stops at the first failure,
// returning an error naming how many pages were freed before it.
func (a *Allocator) FreePages(order int, pages []uint64) error {
	for i, pa := range pages {
		if err := a.Free(pa, order); err != nil {
			return fmt.Errorf("alloc: freed %d/%d pages: %w", i, len(pages), err)
		}
	}
	return nil
}

// TotalBytes returns the managed capacity.
func (a *Allocator) TotalBytes() uint64 { return a.total }

// FreeBytes returns the currently-unallocated capacity.
func (a *Allocator) FreeBytes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total - a.used
}

// UsedBytes returns the currently-allocated capacity.
func (a *Allocator) UsedBytes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// FreePagesAtOrder returns how many pages of the given order the allocator
// can currently produce — free capacity that exists as blocks of at least
// that order. Boot-time offlining punches sub-huge-page holes into node
// memory, so huge-page capacity can be well below FreeBytes.
func (a *Allocator) FreePagesAtOrder(order int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	for o := order; o <= MaxOrder; o++ {
		total += a.free[o].len() << (o - order)
	}
	return total
}

// FreeBlocks returns the number of free blocks at each order — the free-
// block histogram fragmentation analysis reads (mirroring
// /proc/buddyinfo).
func (a *Allocator) FreeBlocks() [MaxOrder + 1]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out [MaxOrder + 1]int
	for o := range a.free {
		out[o] = a.free[o].len()
	}
	return out
}

// FreeBytesByOrder returns the free capacity held at each block order. The
// distribution is the fragmentation signature: the same FreeBytes spread
// across low orders cannot back huge pages.
func (a *Allocator) FreeBytesByOrder() [MaxOrder + 1]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out [MaxOrder + 1]uint64
	for o := range a.free {
		out[o] = uint64(a.free[o].len()) * OrderBytes(o)
	}
	return out
}

// LargestFreeOrder returns the order of the largest currently-free block,
// or -1 when the allocator is exhausted. It is the cheapest admission
// probe: a request of order k is satisfiable iff LargestFreeOrder() >= k.
func (a *Allocator) LargestFreeOrder() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	for o := MaxOrder; o >= 0; o-- {
		if a.free[o].len() > 0 {
			return o
		}
	}
	return -1
}

// AllocPages allocates n contiguous-or-not pages of the given order,
// returning their addresses; on failure everything allocated so far is
// released.
func (a *Allocator) AllocPages(order, n int) ([]uint64, error) {
	pages := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		pa, err := a.Alloc(order)
		if err != nil {
			for _, p := range pages {
				_ = a.Free(p, order)
			}
			return nil, fmt.Errorf("alloc: page %d/%d: %w", i, n, err)
		}
		pages = append(pages, pa)
	}
	return pages, nil
}

// HugePool is a reserved pool of fixed-order huge pages, modelling the
// statically-allocated, pinned, non-overcommitted guest backing memory the
// paper's deployment environment prescribes (§5).
type HugePool struct {
	order int
	pages []uint64
}

// NewHugePool reserves n huge pages of the given order from a.
func NewHugePool(a *Allocator, order, n int) (*HugePool, error) {
	pages, err := a.AllocPages(order, n)
	if err != nil {
		return nil, err
	}
	return &HugePool{order: order, pages: pages}, nil
}

// Order returns the pool's page order.
func (p *HugePool) Order() int { return p.order }

// Remaining returns how many pages are still reservable.
func (p *HugePool) Remaining() int { return len(p.pages) }

// Take removes one page from the pool.
func (p *HugePool) Take() (uint64, error) {
	if len(p.pages) == 0 {
		return 0, ErrNoMemory
	}
	pa := p.pages[len(p.pages)-1]
	p.pages = p.pages[:len(p.pages)-1]
	return pa, nil
}

// Put returns a page to the pool.
func (p *HugePool) Put(pa uint64) { p.pages = append(p.pages, pa) }

// PageSizeName formats an order as a human-readable page size.
func PageSizeName(order int) string {
	b := OrderBytes(order)
	switch {
	case b >= geometry.GiB:
		return fmt.Sprintf("%dG", b/geometry.GiB)
	case b >= geometry.MiB:
		return fmt.Sprintf("%dM", b/geometry.MiB)
	default:
		return fmt.Sprintf("%dK", b/geometry.KiB)
	}
}
