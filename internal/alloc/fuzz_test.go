package alloc

import (
	"math/rand"
	"testing"

	"repro/internal/subarray"
)

// FuzzBuddySequences drives seeded random alloc/free sequences and checks
// the allocator's conservation and disjointness invariants.
func FuzzBuddySequences(f *testing.F) {
	f.Add(int64(1), uint8(8))
	f.Add(int64(42), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, maxOrder uint8) {
		order := int(maxOrder) % (Order2M + 1)
		rng := rand.New(rand.NewSource(seed))
		a, err := New([]subarray.Range{{Start: 0, End: 16 << 20}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		type blk struct {
			pa uint64
			o  int
		}
		var live []blk
		for i := 0; i < 200; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				o := rng.Intn(order + 1)
				pa, err := a.Alloc(o)
				if err != nil {
					continue
				}
				if pa%OrderBytes(o) != 0 {
					t.Fatalf("misaligned block %#x order %d", pa, o)
				}
				for _, b := range live {
					if pa < b.pa+OrderBytes(b.o) && b.pa < pa+OrderBytes(o) {
						t.Fatalf("overlap: %#x/%d with %#x/%d", pa, o, b.pa, b.o)
					}
				}
				live = append(live, blk{pa, o})
			} else {
				i := rng.Intn(len(live))
				if err := a.Free(live[i].pa, live[i].o); err != nil {
					t.Fatal(err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if a.FreeBytes()+a.UsedBytes() != a.TotalBytes() {
				t.Fatal("conservation violated")
			}
		}
	})
}
