package alloc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/subarray"
)

func mkRange(start, size uint64) subarray.Range {
	return subarray.Range{Start: start, End: start + size}
}

func TestOrderHelpers(t *testing.T) {
	if OrderBytes(0) != 4096 {
		t.Errorf("OrderBytes(0) = %d", OrderBytes(0))
	}
	if OrderBytes(Order2M) != 2<<20 {
		t.Errorf("OrderBytes(Order2M) = %d", OrderBytes(Order2M))
	}
	if OrderBytes(Order1G) != 1<<30 {
		t.Errorf("OrderBytes(Order1G) = %d", OrderBytes(Order1G))
	}
	if OrderFor(4096) != 0 || OrderFor(4097) != 1 || OrderFor(2<<20) != Order2M {
		t.Error("OrderFor wrong")
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a, err := New([]subarray.Range{mkRange(0, 16<<20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBytes() != 16<<20 {
		t.Fatalf("TotalBytes = %d", a.TotalBytes())
	}
	pa, err := a.Alloc(Order2M)
	if err != nil {
		t.Fatal(err)
	}
	if pa%OrderBytes(Order2M) != 0 {
		t.Errorf("2M block at %#x not aligned", pa)
	}
	if a.FreeBytes() != 14<<20 {
		t.Errorf("FreeBytes = %d", a.FreeBytes())
	}
	if err := a.Free(pa, Order2M); err != nil {
		t.Fatal(err)
	}
	if a.FreeBytes() != 16<<20 {
		t.Errorf("FreeBytes after free = %d", a.FreeBytes())
	}
}

func TestCoalescingRestoresMaximalBlocks(t *testing.T) {
	a, err := New([]subarray.Range{mkRange(0, 4<<20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Allocate everything as 4K pages, free them all; we should get the
	// original large blocks back.
	var pages []uint64
	for {
		pa, err := a.Alloc(0)
		if err != nil {
			break
		}
		pages = append(pages, pa)
	}
	if len(pages) != 1024 {
		t.Fatalf("allocated %d pages, want 1024", len(pages))
	}
	for _, pa := range pages {
		if err := a.Free(pa, 0); err != nil {
			t.Fatal(err)
		}
	}
	blocks := a.FreeBlocks()
	for o := 0; o < 10; o++ {
		if blocks[o] != 0 {
			t.Errorf("order %d has %d blocks after full free; coalescing failed", o, blocks[o])
		}
	}
	if blocks[10] != 1 { // 4 MiB = one order-10 block
		t.Errorf("order 10 has %d blocks, want 1", blocks[10])
	}
}

func TestOfflineExcludesRanges(t *testing.T) {
	// 8 MiB with the middle 2 MiB offlined.
	a, err := New(
		[]subarray.Range{mkRange(0, 8<<20)},
		[]subarray.Range{mkRange(3<<20, 2<<20)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBytes() != 6<<20 {
		t.Fatalf("TotalBytes = %d, want 6 MiB", a.TotalBytes())
	}
	// No allocation may land in the offlined hole.
	for {
		pa, err := a.Alloc(0)
		if err != nil {
			break
		}
		if pa >= 3<<20 && pa < 5<<20 {
			t.Fatalf("allocated offlined page %#x", pa)
		}
	}
}

func TestAllocExhaustionAndErrors(t *testing.T) {
	a, err := New([]subarray.Range{mkRange(0, 2<<20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(Order2M); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(0); err != ErrNoMemory {
		t.Errorf("expected ErrNoMemory, got %v", err)
	}
	if _, err := a.Alloc(-1); err == nil {
		t.Error("negative order accepted")
	}
	if _, err := a.Alloc(MaxOrder + 1); err == nil {
		t.Error("oversize order accepted")
	}
	if err := a.Free(4097, 0); err == nil {
		t.Error("misaligned free accepted")
	}
	if err := a.Free(0, 99); err == nil {
		t.Error("bad order free accepted")
	}
}

func TestAllocPagesRollsBackOnFailure(t *testing.T) {
	a, err := New([]subarray.Range{mkRange(0, 4<<20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocPages(Order2M, 3); err == nil {
		t.Fatal("expected failure for 3x2M from 4M")
	}
	if a.FreeBytes() != 4<<20 {
		t.Errorf("rollback incomplete: free = %d", a.FreeBytes())
	}
	pages, err := a.AllocPages(Order2M, 2)
	if err != nil || len(pages) != 2 {
		t.Fatalf("AllocPages(2) = %v, %v", pages, err)
	}
}

func TestNonContiguousRanges(t *testing.T) {
	a, err := New([]subarray.Range{mkRange(0, 1<<20), mkRange(8<<20, 1<<20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBytes() != 2<<20 {
		t.Fatalf("TotalBytes = %d", a.TotalBytes())
	}
	seen := make(map[uint64]bool)
	for {
		pa, err := a.Alloc(0)
		if err != nil {
			break
		}
		if seen[pa] {
			t.Fatalf("double allocation of %#x", pa)
		}
		seen[pa] = true
		inA := pa < 1<<20
		inB := pa >= 8<<20 && pa < 9<<20
		if !inA && !inB {
			t.Fatalf("allocation %#x outside managed ranges", pa)
		}
	}
	if len(seen) != 512 {
		t.Errorf("allocated %d pages, want 512", len(seen))
	}
}

func TestUnalignedRangeRejected(t *testing.T) {
	if _, err := New([]subarray.Range{mkRange(100, 1<<20)}, nil); err == nil {
		t.Error("unaligned range accepted")
	}
}

// TestBuddyInvariantsProperty drives random alloc/free sequences and checks
// conservation, alignment, disjointness and containment.
func TestBuddyInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := New([]subarray.Range{mkRange(0, 8<<20), mkRange(32<<20, 4<<20)}, nil)
		if err != nil {
			return false
		}
		type block struct {
			pa    uint64
			order int
		}
		var live []block
		for step := 0; step < 300; step++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				order := rng.Intn(Order2M + 1)
				pa, err := a.Alloc(order)
				if err != nil {
					continue
				}
				if pa%OrderBytes(order) != 0 {
					return false
				}
				// Check disjointness with all live blocks.
				for _, b := range live {
					if pa < b.pa+OrderBytes(b.order) && b.pa < pa+OrderBytes(order) {
						return false
					}
				}
				live = append(live, block{pa, order})
			} else {
				i := rng.Intn(len(live))
				b := live[i]
				if err := a.Free(b.pa, b.order); err != nil {
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			// Conservation invariant.
			var liveBytes uint64
			for _, b := range live {
				liveBytes += OrderBytes(b.order)
			}
			if a.UsedBytes() != liveBytes || a.FreeBytes()+a.UsedBytes() != a.TotalBytes() {
				return false
			}
		}
		// Free everything; allocator must return to pristine capacity.
		for _, b := range live {
			if err := a.Free(b.pa, b.order); err != nil {
				return false
			}
		}
		return a.FreeBytes() == a.TotalBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHugePool(t *testing.T) {
	a, err := New([]subarray.Range{mkRange(0, 16<<20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewHugePool(a, Order2M, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Remaining() != 4 || pool.Order() != Order2M {
		t.Fatalf("pool state wrong: %d remaining", pool.Remaining())
	}
	pa, err := pool.Take()
	if err != nil {
		t.Fatal(err)
	}
	if pool.Remaining() != 3 {
		t.Error("Take did not decrement")
	}
	pool.Put(pa)
	if pool.Remaining() != 4 {
		t.Error("Put did not increment")
	}
	for i := 0; i < 4; i++ {
		if _, err := pool.Take(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pool.Take(); err != ErrNoMemory {
		t.Errorf("empty pool Take = %v, want ErrNoMemory", err)
	}
	// Pool reservation is reflected in the allocator.
	if a.UsedBytes() != 8<<20 {
		t.Errorf("UsedBytes = %d, want 8 MiB", a.UsedBytes())
	}
	if _, err := NewHugePool(a, Order2M, 1000); err == nil {
		t.Error("oversized pool accepted")
	}
}

func TestPageSizeName(t *testing.T) {
	if PageSizeName(0) != "4K" || PageSizeName(Order2M) != "2M" || PageSizeName(Order1G) != "1G" {
		t.Errorf("PageSizeName wrong: %s %s %s", PageSizeName(0), PageSizeName(Order2M), PageSizeName(Order1G))
	}
}

func TestAllocationsAscend(t *testing.T) {
	// §5.4 deployment environment: guests get ascending contiguous
	// physical regions; the allocator hands out lowest addresses first.
	a, err := New([]subarray.Range{mkRange(0, 32<<20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i := 0; i < 16; i++ {
		pa, err := a.Alloc(Order2M)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && pa != prev+OrderBytes(Order2M) {
			t.Fatalf("allocation %d at %#x, want contiguous after %#x", i, pa, prev)
		}
		prev = pa
	}
}

func TestFragmentationIntrospection(t *testing.T) {
	// 16 MiB arena: largest free block is one order-12 (16 MiB) block.
	a, err := New([]subarray.Range{mkRange(0, 16<<20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.LargestFreeOrder(); got != 12 {
		t.Fatalf("LargestFreeOrder on fresh 16 MiB arena = %d, want 12", got)
	}
	hist := a.FreeBytesByOrder()
	if hist[12] != 16<<20 {
		t.Fatalf("FreeBytesByOrder[12] = %d, want 16 MiB", hist[12])
	}

	// Splitting a base page out of the arena leaves one free block at
	// every order below the top: the classic buddy split signature.
	pa, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.LargestFreeOrder(); got != 11 {
		t.Fatalf("LargestFreeOrder after split = %d, want 11", got)
	}
	blocks := a.FreeBlocks()
	for o := 0; o <= 11; o++ {
		if blocks[o] != 1 {
			t.Errorf("FreeBlocks[%d] = %d, want 1", o, blocks[o])
		}
	}
	var free uint64
	for _, b := range a.FreeBytesByOrder() {
		free += b
	}
	if free != a.FreeBytes() {
		t.Errorf("histogram sums to %d, FreeBytes is %d", free, a.FreeBytes())
	}

	if err := a.Free(pa, 0); err != nil {
		t.Fatal(err)
	}
	if got := a.LargestFreeOrder(); got != 12 {
		t.Fatalf("LargestFreeOrder after coalesce = %d, want 12", got)
	}
}

func TestLargestFreeOrderExhausted(t *testing.T) {
	a, err := New([]subarray.Range{mkRange(0, 4096)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(0); err != nil {
		t.Fatal(err)
	}
	if got := a.LargestFreeOrder(); got != -1 {
		t.Fatalf("LargestFreeOrder on exhausted allocator = %d, want -1", got)
	}
}

// TestFreePages: the balloon's bulk-release path returns a batch of huge
// pages and restores the exact free capacity.
func TestFreePages(t *testing.T) {
	a, err := New([]subarray.Range{mkRange(0, 64<<20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := a.FreeBytes()
	pages, perr := a.AllocPages(Order2M, 8)
	if perr != nil {
		t.Fatal(perr)
	}
	if err := a.FreePages(Order2M, pages); err != nil {
		t.Fatal(err)
	}
	if got := a.FreeBytes(); got != before {
		t.Errorf("FreeBytes after FreePages = %d, want %d", got, before)
	}
	if got := a.UsedBytes(); got != 0 {
		t.Errorf("UsedBytes after FreePages = %d, want 0", got)
	}
	if err := a.FreePages(Order2M, []uint64{12345}); err == nil {
		t.Error("misaligned batch free accepted")
	}
}

func TestAllocAtClaimsSpecificBlock(t *testing.T) {
	a, err := New([]subarray.Range{mkRange(0, 16<<20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	target := uint64(6 << 20) // mid-range 2M page inside a larger free block
	if err := a.AllocAt(target, Order2M); err != nil {
		t.Fatal(err)
	}
	if got := a.UsedBytes(); got != OrderBytes(Order2M) {
		t.Fatalf("used = %d, want one 2M page", got)
	}
	// Claiming the same block again must fail with ErrNoMemory.
	if err := a.AllocAt(target, Order2M); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("double AllocAt error = %v, want ErrNoMemory", err)
	}
	// The rest of the range is still allocatable: draining everything
	// else must succeed and never hand out the claimed page.
	seen := map[uint64]bool{}
	for {
		pa, err := a.Alloc(Order2M)
		if err != nil {
			break
		}
		if pa == target {
			t.Fatalf("Alloc handed out the claimed page %#x", pa)
		}
		if seen[pa] {
			t.Fatalf("Alloc handed out %#x twice", pa)
		}
		seen[pa] = true
	}
	if len(seen) != (16<<20)/(2<<20)-1 {
		t.Fatalf("drained %d pages, want %d", len(seen), (16<<20)/(2<<20)-1)
	}
	// Freeing the claimed page restores full coalescing.
	for pa := range seen {
		if err := a.Free(pa, Order2M); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Free(target, Order2M); err != nil {
		t.Fatal(err)
	}
	if a.LargestFreeOrder() < Order2M+3 {
		t.Fatalf("coalescing after AllocAt broke: largest order %d", a.LargestFreeOrder())
	}
}

func TestAllocAtRejectsInvalid(t *testing.T) {
	a, err := New([]subarray.Range{mkRange(0, 4<<20)}, []subarray.Range{mkRange(1<<20, 1<<20)})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AllocAt(1<<20, Order2M); err == nil {
		t.Fatal("unaligned AllocAt accepted")
	}
	// Offlined memory is not free: the claim must wrap ErrNoMemory.
	if err := a.AllocAt(1<<20, 8); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("offline AllocAt error = %v, want ErrNoMemory", err)
	}
	// Outside the managed ranges entirely.
	if err := a.AllocAt(1<<30, Order2M); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("out-of-range AllocAt error = %v, want ErrNoMemory", err)
	}
	if err := a.AllocAt(0, -1); err == nil {
		t.Fatal("negative order accepted")
	}
}
