package experiments

import (
	"fmt"
	"strings"

	"repro/internal/geometry"
	"repro/internal/subarray"

	"repro/internal/addr"
)

// FragmentationRow quantifies §8.1: provisioning whole subarray groups to
// VMs whose sizes do not align wastes DRAM; sub-NUMA clustering halves the
// group size and the waste.
type FragmentationRow struct {
	// Config labels the provisioning granularity.
	Config string
	// GroupGiB is the subarray group size.
	GroupGiB float64
	// WastePct is internal fragmentation across the VM size mix.
	WastePct float64
}

// vmMix is a representative cloud VM size mix (GiB), spanning micro-VMs to
// large instances (§8.1 highlights micro-VM pressure).
var vmMix = []float64{0.5, 0.5, 1, 1, 2, 2, 4, 4, 8, 16, 16, 32, 64, 160}

// FragmentationStudy computes waste for the three subarray sizes at SNC-1
// and SNC-2 on the evaluation server.
func FragmentationStudy() ([]FragmentationRow, error) {
	var out []FragmentationRow
	for _, snc := range []int{1, 2} {
		g, err := geometry.Default().WithSNC(snc)
		if err != nil {
			return nil, err
		}
		for _, rows := range []int{512, 1024, 2048} {
			gg := g.WithSubarraySize(rows)
			groupBytes := float64(gg.SubarrayGroupBytes())
			var used, granted float64
			for _, vmGiB := range vmMix {
				want := vmGiB * float64(geometry.GiB)
				groups := int((want + groupBytes - 1) / groupBytes)
				used += want
				granted += float64(groups) * groupBytes
			}
			out = append(out, FragmentationRow{
				Config:   fmt.Sprintf("SNC-%d, %d-row subarrays", snc, rows),
				GroupGiB: groupBytes / float64(geometry.GiB),
				WastePct: 100 * (granted - used) / granted,
			})
		}
	}
	return out, nil
}

// RenderFragmentation formats the study.
func RenderFragmentation(rows []FragmentationRow) string {
	var b strings.Builder
	b.WriteString("Memory fragmentation under whole-group provisioning (§8.1)\n")
	fmt.Fprintf(&b, "%-28s %10s %10s\n", "configuration", "group", "waste")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %7.2f GiB %9.1f%%\n", r.Config, r.GroupGiB, r.WastePct)
	}
	return b.String()
}

// DDR5Row compares DDR4 and DDR5 handling of one subarray size (§8.2):
// DDR5 undoes internal mirroring/inversion at each device, so
// non-power-of-two sizes need no artificial groups or guard rows.
type DDR5Row struct {
	SubarrayRows  int
	DDR4Reserved  float64 // % of DRAM offlined on DDR4
	DDR5Reserved  float64 // % of DRAM offlined on DDR5
	DDR4Artifical bool
	DDR5Artifical bool
}

// DDR5Comparison sweeps subarray sizes under DDR4 and DDR5 transforms.
func DDR5Comparison() ([]DDR5Row, error) {
	ddr4 := addr.AllTransforms()
	ddr5 := addr.TransformConfig{Scrambling: true} // vendor scrambling may remain
	var out []DDR5Row
	for _, rows := range []int{512, 640, 768, 1024, 1280, 2048} {
		g := geometry.Geometry{
			Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
			BanksPerRank: 8, RowBytes: 8 * geometry.KiB,
			RowsPerSubarray: rows,
		}
		lcm := rows * nextPow2(rows) / gcd(rows, nextPow2(rows))
		g.RowsPerBank = lcm
		for g.RowsPerBank < 4*nextPow2(rows) {
			g.RowsPerBank += lcm
		}
		mapper, err := addr.NewSkylakeMapper(g)
		if err != nil {
			return nil, err
		}
		l4, err := subarray.NewLayoutForModule(g, mapper, ddr4)
		if err != nil {
			return nil, err
		}
		l5, err := subarray.NewLayoutForModule(g, mapper, ddr5)
		if err != nil {
			return nil, err
		}
		out = append(out, DDR5Row{
			SubarrayRows:  rows,
			DDR4Reserved:  100 * float64(len(l4.BoundaryGuardRows(ddr4))) / float64(g.RowsPerBank),
			DDR5Reserved:  100 * float64(len(l5.BoundaryGuardRows(ddr5))) / float64(g.RowsPerBank),
			DDR4Artifical: l4.Artificial(),
			DDR5Artifical: l5.Artificial(),
		})
	}
	return out, nil
}

// RenderDDR5 formats the comparison.
func RenderDDR5(rows []DDR5Row) string {
	var b strings.Builder
	b.WriteString("DDR4 vs DDR5 subarray group formation (§8.2)\n")
	fmt.Fprintf(&b, "%10s %18s %18s\n", "subarray", "DDR4 reserved", "DDR5 reserved")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %13.2f%% (%v) %13.2f%% (%v)\n",
			r.SubarrayRows, r.DDR4Reserved, artLabel(r.DDR4Artifical), r.DDR5Reserved, artLabel(r.DDR5Artifical))
	}
	return b.String()
}

func artLabel(a bool) string {
	if a {
		return "artificial"
	}
	return "exact"
}
