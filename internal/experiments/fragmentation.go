package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/migrate"
	"repro/internal/numa"
	"repro/internal/subarray"

	"repro/internal/addr"
)

// FragmentationRow quantifies §8.1: provisioning whole subarray groups to
// VMs whose sizes do not align wastes DRAM; sub-NUMA clustering halves the
// group size and the waste.
type FragmentationRow struct {
	// Config labels the provisioning granularity.
	Config string
	// GroupGiB is the subarray group size.
	GroupGiB float64
	// WastePct is internal fragmentation across the VM size mix.
	WastePct float64
}

// vmMix is a representative cloud VM size mix (GiB), spanning micro-VMs to
// large instances (§8.1 highlights micro-VM pressure).
var vmMix = []float64{0.5, 0.5, 1, 1, 2, 2, 4, 4, 8, 16, 16, 32, 64, 160}

// FragmentationStudy computes waste for the three subarray sizes at SNC-1
// and SNC-2 on the evaluation server.
func FragmentationStudy() ([]FragmentationRow, error) {
	var out []FragmentationRow
	for _, snc := range []int{1, 2} {
		g, err := geometry.Default().WithSNC(snc)
		if err != nil {
			return nil, err
		}
		for _, rows := range []int{512, 1024, 2048} {
			gg := g.WithSubarraySize(rows)
			groupBytes := float64(gg.SubarrayGroupBytes())
			var used, granted float64
			for _, vmGiB := range vmMix {
				want := vmGiB * float64(geometry.GiB)
				groups := int((want + groupBytes - 1) / groupBytes)
				used += want
				granted += float64(groups) * groupBytes
			}
			out = append(out, FragmentationRow{
				Config:   fmt.Sprintf("SNC-%d, %d-row subarrays", snc, rows),
				GroupGiB: groupBytes / float64(geometry.GiB),
				WastePct: 100 * (granted - used) / granted,
			})
		}
	}
	return out, nil
}

// DefragRecovery is the live counterpart of the waste table: on a full
// socket a pending VM is refused (ENOMEM from fragmentation, not from lack
// of bytes elsewhere), and admission recovers once the migration planner
// rebalances a victim across sockets.
type DefragRecovery struct {
	// BeforeAdmitted / AfterAdmitted record the pending VM's admission
	// outcome before and after rebalancing.
	BeforeAdmitted bool
	AfterAdmitted  bool
	// Moves is how many live migrations the plan needed.
	Moves int
	// OrderBefore / OrderAfter are the largest free buddy order across the
	// home socket's reservable guest nodes at each instant (-1 = none).
	OrderBefore int
	OrderAfter  int
	// Histogram is the home socket's post-rebalance free-block histogram.
	Histogram string
}

// socketFreeState reads the largest reservable buddy order and the free
// block histogram across a socket's unowned guest nodes, straight from the
// allocators' introspection (no ad-hoc probing).
func socketFreeState(h *core.Hypervisor, socket int) (int, string, error) {
	largest := -1
	var counts [alloc.MaxOrder + 1]uint64
	for _, n := range h.Topology().NodesOnSocket(socket, numa.GuestReserved) {
		if _, owned := h.Registry().OwnerOf(n.ID); owned {
			continue
		}
		a, err := h.Allocator(n.ID)
		if err != nil {
			return 0, "", err
		}
		if o := a.LargestFreeOrder(); o > largest {
			largest = o
		}
		hist := a.FreeBytesByOrder()
		for o, bytes := range hist {
			counts[o] += bytes / alloc.OrderBytes(o)
		}
	}
	var parts []string
	for o := alloc.MaxOrder; o >= 0; o-- {
		if counts[o] > 0 {
			parts = append(parts, fmt.Sprintf("%d x order-%d", counts[o], o))
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "none")
	}
	return largest, strings.Join(parts, ", "), nil
}

// DefragRecoveryStudy boots the two-socket lab box, fills the home socket's
// guest nodes, and shows the pending reservation flip from refused to
// admitted after the planner's moves execute.
func DefragRecoveryStudy(ctx context.Context) (*DefragRecovery, error) {
	h, err := core.Boot(core.Config{
		Geometry:      migrationLabGeometry(),
		Profiles:      []dram.Profile{migrationLabProfile()},
		EPTProtection: ept.GuardRows,
	}, core.ModeSiloz)
	if err != nil {
		return nil, err
	}
	proc := core.Process{CGroup: "kvm", KVMPrivileged: true}
	for _, name := range []string{"t0", "t1", "t2"} {
		if _, err := h.CreateVM(proc, core.VMSpec{Name: name, Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
			return nil, err
		}
	}
	pending := core.VMSpec{Name: "pending", Socket: 0, MemoryBytes: 64 * geometry.MiB}
	out := &DefragRecovery{}
	if out.OrderBefore, _, err = socketFreeState(h, pending.Socket); err != nil {
		return nil, err
	}
	if _, err := h.CreateVM(proc, pending); err == nil {
		out.BeforeAdmitted = true // scenario broken; surfaces as a failed check
	}
	plan, err := migrate.NewPlanner(h).PlanAdmission(pending)
	if err != nil {
		return nil, err
	}
	reps, err := migrate.NewEngine(h).Execute(ctx, plan)
	if err != nil {
		return nil, err
	}
	out.Moves = len(reps)
	if out.OrderAfter, out.Histogram, err = socketFreeState(h, pending.Socket); err != nil {
		return nil, err
	}
	if _, err := h.CreateVM(proc, pending); err == nil {
		out.AfterAdmitted = true
	}
	return out, nil
}

// fragmentationExp is the "fragmentation" experiment: §8.1 provisioning
// waste, plus the live defrag-recovery scenario the migration engine fixes.
type fragmentationExp struct{}

func (fragmentationExp) Name() string { return "fragmentation" }

func (fragmentationExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows, err := FragmentationStudy()
	if err != nil {
		return nil, err
	}
	var rec *DefragRecovery
	if err := cfg.Pool.Run(ctx, func() error {
		var err error
		rec, err = DefragRecoveryStudy(ctx)
		return err
	}); err != nil {
		return nil, err
	}
	r := &Result{
		Name:    "fragmentation",
		Title:   "Memory fragmentation under whole-group provisioning (§8.1)",
		Columns: []string{"group", "waste", "admitted", "moves", "largest free order"},
		Units:   []string{"GiB", "%", "", "", ""},
	}
	worst := 0.0
	for _, row := range rows {
		r.Rows = append(r.Rows, Row{Label: row.Config, Cells: []any{row.GroupGiB, row.WastePct, "", "", ""}})
		if row.WastePct > worst {
			worst = row.WastePct
		}
	}
	r.Rows = append(r.Rows,
		Row{Label: "defrag recovery: before rebalance", Cells: []any{"", "", rec.BeforeAdmitted, 0, rec.OrderBefore}},
		Row{Label: "defrag recovery: after rebalance", Cells: []any{"", "", rec.AfterAdmitted, rec.Moves, rec.OrderAfter}},
	)
	r.scalar("worst_waste_pct", worst)
	r.scalar("defrag_moves", float64(rec.Moves))
	r.check("defrag_recovers_admission",
		!rec.BeforeAdmitted && rec.AfterAdmitted && rec.Moves >= 1,
		"a VM refused for fragmentation is admitted after planner-driven rebalancing")
	r.Notes = append(r.Notes,
		"sub-NUMA clustering halves the group size and the waste",
		"post-rebalance free blocks on the home socket: "+rec.Histogram)
	return r, nil
}

// DDR5Row compares DDR4 and DDR5 handling of one subarray size (§8.2):
// DDR5 undoes internal mirroring/inversion at each device, so
// non-power-of-two sizes need no artificial groups or guard rows.
type DDR5Row struct {
	SubarrayRows  int
	DDR4Reserved  float64 // % of DRAM offlined on DDR4
	DDR5Reserved  float64 // % of DRAM offlined on DDR5
	DDR4Artifical bool
	DDR5Artifical bool
}

// DDR5Comparison sweeps subarray sizes under DDR4 and DDR5 transforms.
func DDR5Comparison() ([]DDR5Row, error) {
	ddr4 := addr.AllTransforms()
	ddr5 := addr.TransformConfig{Scrambling: true} // vendor scrambling may remain
	var out []DDR5Row
	for _, rows := range []int{512, 640, 768, 1024, 1280, 2048} {
		g := geometry.Geometry{
			Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
			BanksPerRank: 8, RowBytes: 8 * geometry.KiB,
			RowsPerSubarray: rows,
		}
		lcm := rows * nextPow2(rows) / gcd(rows, nextPow2(rows))
		g.RowsPerBank = lcm
		for g.RowsPerBank < 4*nextPow2(rows) {
			g.RowsPerBank += lcm
		}
		mapper, err := addr.NewMapper(g, addr.KindSkylake)
		if err != nil {
			return nil, err
		}
		l4, err := subarray.NewLayoutForModule(g, mapper, ddr4)
		if err != nil {
			return nil, err
		}
		l5, err := subarray.NewLayoutForModule(g, mapper, ddr5)
		if err != nil {
			return nil, err
		}
		out = append(out, DDR5Row{
			SubarrayRows:  rows,
			DDR4Reserved:  100 * float64(len(l4.BoundaryGuardRows(ddr4))) / float64(g.RowsPerBank),
			DDR5Reserved:  100 * float64(len(l5.BoundaryGuardRows(ddr5))) / float64(g.RowsPerBank),
			DDR4Artifical: l4.Artificial(),
			DDR5Artifical: l5.Artificial(),
		})
	}
	return out, nil
}

// ddr5Exp is the "ddr5" experiment: §8.2 DDR4-vs-DDR5 group formation.
type ddr5Exp struct{}

func (ddr5Exp) Name() string { return "ddr5" }

func (ddr5Exp) Run(ctx context.Context, cfg Config) (*Result, error) {
	var rows []DDR5Row
	err := cfg.Pool.Run(ctx, func() error {
		var err error
		rows, err = DDR5Comparison()
		return err
	})
	if err != nil {
		return nil, err
	}
	r := &Result{
		Name:    "ddr5",
		Title:   "DDR4 vs DDR5 subarray group formation (§8.2)",
		Columns: []string{"DDR4 reserved", "DDR4 artificial", "DDR5 reserved", "DDR5 artificial"},
		Units:   []string{"%", "", "%", ""},
	}
	ddr5Clean := true
	ddr4Max := 0.0
	for _, row := range rows {
		r.Rows = append(r.Rows, Row{
			Label: fmt.Sprintf("%d-row subarrays", row.SubarrayRows),
			Cells: []any{row.DDR4Reserved, row.DDR4Artifical, row.DDR5Reserved, row.DDR5Artifical},
		})
		if row.DDR5Reserved != 0 || row.DDR5Artifical {
			ddr5Clean = false
		}
		if row.DDR4Reserved > ddr4Max {
			ddr4Max = row.DDR4Reserved
		}
	}
	r.scalar("ddr4_max_reserved_pct", ddr4Max)
	r.check("ddr5_needs_no_guards", ddr5Clean,
		"DDR5 undoes internal remaps per device, so no artificial groups or guard rows")
	return r, nil
}
