package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/mitigation"
	"repro/internal/workload"
)

// MitigationMatrixConfig parameterizes the "mitigation-matrix" experiment:
// every deployable Rowhammer defense — PARA, Silver Bullet, CATT guard
// bands, Siloz — plus the undefended control faces the identical seeded
// attack campaign (edge hammering, Blacksmith fuzzing, lifecycle churn)
// and the identical workload suite. The result is one row per defense:
// protection (flips contained) against overhead (refresh energy, blocked
// capacity, workload slowdown), with Siloz as one row among equals.
type MitigationMatrixConfig struct {
	// Kinds selects the defense rows; empty = every mitigation kind in
	// canonical order (none, para, silver-bullet, catt, siloz).
	Kinds []string
	// Reps repeats each kind's attack trial with salt-spaced seeds.
	Reps int
	// FuzzPatterns and ChurnRounds shape each trial's Blacksmith and
	// churn phases (attack.MitigationTrialConfig).
	FuzzPatterns int
	ChurnRounds  int
	// Ops and WorkloadReps shape the slowdown half: each workload runs
	// WorkloadReps times at Ops operations per defended controller.
	Ops          int
	WorkloadReps int
	// Seed drives both halves.
	Seed int64
}

// DefaultMitigationMatrixConfig runs the full matrix: every kind, two
// attack trials each, the full three-phase campaign.
func DefaultMitigationMatrixConfig() MitigationMatrixConfig {
	return MitigationMatrixConfig{
		Reps:         2,
		FuzzPatterns: 6,
		ChurnRounds:  2,
		Ops:          30_000,
		WorkloadReps: 3,
		Seed:         53,
	}
}

// QuickMitigationMatrixConfig trims to one trial per kind and a shorter
// campaign — still every defense row.
func QuickMitigationMatrixConfig() MitigationMatrixConfig {
	cfg := DefaultMitigationMatrixConfig()
	cfg.Reps = 1
	cfg.FuzzPatterns = 3
	cfg.ChurnRounds = 1
	cfg.Ops = 8_000
	cfg.WorkloadReps = 2
	return cfg
}

func (cfg *MitigationMatrixConfig) normalize() {
	def := DefaultMitigationMatrixConfig()
	if len(cfg.Kinds) == 0 {
		for _, k := range mitigation.Kinds() {
			cfg.Kinds = append(cfg.Kinds, k.String())
		}
	}
	if cfg.Reps == 0 {
		cfg.Reps = def.Reps
	}
	if cfg.FuzzPatterns == 0 {
		cfg.FuzzPatterns = def.FuzzPatterns
	}
	if cfg.ChurnRounds == 0 {
		cfg.ChurnRounds = def.ChurnRounds
	}
	if cfg.Ops == 0 {
		cfg.Ops = def.Ops
	}
	if cfg.WorkloadReps == 0 {
		cfg.WorkloadReps = def.WorkloadReps
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
}

// matrixWorkloads is the slowdown suite: a random-access key-value server
// and an OLTP mix — row-miss-heavy streams, so a defense that occupies
// banks with injected refreshes pays visibly.
func matrixWorkloads() []workload.Workload {
	return []workload.Workload{workload.Memcached{}, workload.Sysbench{}}
}

type mitigationMatrixExp struct{}

func (mitigationMatrixExp) Name() string { return "mitigation-matrix" }

func (mitigationMatrixExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	mm := cfg.Matrix
	mm.normalize()

	kinds := make([]mitigation.Kind, len(mm.Kinds))
	for i, s := range mm.Kinds {
		k, err := mitigation.ParseKind(s)
		if err != nil {
			return nil, err
		}
		kinds[i] = k
	}

	// Phase 1: attack trials — kind x rep cells fan out on the pool; each
	// cell's seed derives from its index alone, so parallel and serial
	// schedules produce identical matrices.
	type trialAgg struct {
		trials                                 int
		escapes, attackerFlips, guardFlips     int
		victimFlips, strayFlips, corruptions   int
		bursts, denied, refreshes, exhaustions int
		blockedBytes                           uint64
		activations                            int64
		health                                 map[string]bool
	}
	cells := len(kinds) * mm.Reps
	trials := make([]*attack.MitigationTrialResult, cells)
	err := cfg.Pool.Map(ctx, cells, func(i int) error {
		k := kinds[i/mm.Reps]
		seed := repSeed(mm.Seed, i)
		lab := lifecycleLabConfig()
		lab.Mitigation = mitigation.Spec{Kind: k, Seed: seed}
		r, err := attack.RunMitigationTrial(attack.MitigationTrialConfig{
			Core:         lab,
			Seed:         seed,
			FuzzPatterns: mm.FuzzPatterns,
			ChurnRounds:  mm.ChurnRounds,
		})
		if err != nil {
			return fmt.Errorf("trial %v rep %d: %w", k, i%mm.Reps, err)
		}
		trials[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	aggs := make([]trialAgg, len(kinds))
	for i, r := range trials {
		a := &aggs[i/mm.Reps]
		a.trials++
		a.escapes += r.Escapes()
		a.attackerFlips += r.AttackerFlips
		a.guardFlips += r.GuardFlips
		a.victimFlips += r.VictimFlips
		a.strayFlips += r.StrayFlips
		a.corruptions += r.VictimCorruptions
		a.bursts += r.HammerBursts
		a.denied += r.Denied
		a.refreshes += r.Refreshes
		a.exhaustions += r.Exhaustions
		a.blockedBytes += r.BlockedBytes
		a.activations += r.Activations
		if r.Health != "" {
			if a.health == nil {
				a.health = map[string]bool{}
			}
			a.health[r.Health] = true
		}
	}

	// Phase 2: workload slowdown. Every kind's suite runs on a machine
	// deploying that defense, with the controller carrying the same
	// activation-plane instance the machine would; the undefended baseline
	// is always measured (even when the none row is not selected) so
	// slowdown is a ratio to it. Identical jitter streams across kinds
	// make the ratio isolate the defense's own bank occupancy.
	perf := PerfConfig{
		Geometry:  migrationLabGeometry(),
		VMMemory:  64 * geometry.MiB,
		Ops:       mm.Ops,
		Reps:      mm.WorkloadReps,
		MLPWindow: 10,
		Seed:      mm.Seed,
	}
	wls := matrixWorkloads()
	banks := perf.Geometry.TotalBanks()
	suiteNs := func(spec mitigation.Spec) ([]float64, error) {
		lab := lifecycleLabConfig()
		lab.Mitigation = spec
		h, err := core.BootMitigated(lab)
		if err != nil {
			return nil, err
		}
		defer h.Shutdown()
		vm, err := h.CreateVM(core.Process{KVMPrivileged: true}, core.VMSpec{
			Name: "bench", Socket: 0, MemoryBytes: perf.VMMemory,
			VCPUs: perf.Geometry.CoresPerSocket,
		})
		if err != nil {
			return nil, err
		}
		var defense func(rep int) mitigation.Mitigation
		if spec.HasRowDefense() {
			defense = func(rep int) mitigation.Mitigation {
				d, derr := spec.RowDefense(banks, mitigation.ScopeSeed(repSeed(spec.Seed, rep), banks))
				if derr != nil {
					return nil // unreachable post-Validate
				}
				return d
			}
		}
		out := make([]float64, len(wls))
		for i, w := range wls {
			s, err := measureDefended(ctx, cfg.Pool, perf, vm, w, execTime, defense)
			if err != nil {
				return nil, err
			}
			out[i] = s.Mean()
		}
		return out, nil
	}
	baseNs, err := suiteNs(mitigation.Spec{Kind: mitigation.KindNone, Seed: mm.Seed})
	if err != nil {
		return nil, fmt.Errorf("baseline suite: %w", err)
	}
	slowdown := make([]float64, len(kinds))
	for ki, k := range kinds {
		ns := baseNs
		if k != mitigation.KindNone {
			if ns, err = suiteNs(mitigation.Spec{Kind: k, Seed: mm.Seed}); err != nil {
				return nil, fmt.Errorf("%v suite: %w", k, err)
			}
		}
		prod := 1.0
		for i := range ns {
			prod *= ns[i] / baseNs[i]
		}
		slowdown[ki] = math.Pow(prod, 1/float64(len(ns)))
	}

	res := &Result{
		Name: "mitigation-matrix",
		Title: "Mitigation matrix: every defense vs the same attack campaign and workload " +
			"suite — protection against refresh energy, blocked capacity, and slowdown",
		Columns: []string{
			"defense", "trials", "escapes", "attacker flips", "guard flips",
			"refreshes", "refresh rate", "blocked", "slowdown", "health",
		},
		Units: []string{
			"", "", "", "", "", "", "per 1k acts", "MiB", "x", "",
		},
		Metadata: map[string]string{
			"geometry":  migrationLabGeometry().String(),
			"seed":      fmt.Sprintf("%d", mm.Seed),
			"reps":      fmt.Sprintf("%d", mm.Reps),
			"workloads": workloadNames(wls),
		},
	}

	protection := Series{Name: "escapes", Unit: "flips"}
	capacity := Series{Name: "blocked-capacity", Unit: "MiB"}
	slowSeries := Series{Name: "workload-slowdown", Unit: "x"}
	var keyed = func(name string, ki int) string { return "matrix_" + name + "_" + kinds[ki].String() }
	for ki := range kinds {
		a := &aggs[ki]
		health := "intact"
		if len(a.health) > 0 {
			var hs []string
			for h := range a.health {
				hs = append(hs, h)
			}
			sort.Strings(hs)
			health = strings.Join(hs, "; ")
		}
		refRate := 0.0
		if a.activations > 0 {
			refRate = 1000 * float64(a.refreshes) / float64(a.activations)
		}
		blockedMiB := float64(a.blockedBytes) / float64(a.trials) / float64(geometry.MiB)
		name := kinds[ki].String()
		res.Rows = append(res.Rows, Row{Label: name, Cells: []any{
			name, a.trials, a.escapes, a.attackerFlips, a.guardFlips,
			a.refreshes, round3(refRate), round3(blockedMiB), round3(slowdown[ki]), health,
		}})
		res.scalar(keyed("escapes", ki), float64(a.escapes))
		res.scalar(keyed("refreshes", ki), float64(a.refreshes))
		res.scalar(keyed("blocked_mib", ki), round3(blockedMiB))
		res.scalar(keyed("slowdown_x", ki), round3(slowdown[ki]))
		protection.Points = append(protection.Points, Point{Label: name, Value: float64(a.escapes)})
		capacity.Points = append(capacity.Points, Point{Label: name, Value: round3(blockedMiB)})
		slowSeries.Points = append(slowSeries.Points, Point{Label: name, Value: round3(slowdown[ki])})
	}
	res.Series = append(res.Series, protection, capacity, slowSeries)

	// Checks: the matrix must have a vulnerable baseline, containing
	// defenses, and costs paid in each defense's own currency.
	idx := map[mitigation.Kind]int{}
	for ki, k := range kinds {
		idx[k] = ki
	}
	if ni, ok := idx[mitigation.KindNone]; ok {
		a := &aggs[ni]
		res.check("baseline_vulnerable", a.escapes > 0 && a.refreshes == 0,
			fmt.Sprintf("undefended machine: %d flips escaped the attacker (victim %d, stray %d), zero refreshes",
				a.escapes, a.victimFlips, a.strayFlips))
	}
	contained, nonvacuous := true, true
	var worst string
	for ki, k := range kinds {
		a := &aggs[ki]
		if a.bursts == 0 {
			nonvacuous = false
		}
		if k == mitigation.KindNone {
			continue
		}
		if a.escapes > 0 {
			contained = false
			worst = fmt.Sprintf("%s let %d flips escape", k, a.escapes)
		}
	}
	res.check("defenses_contain", contained,
		map[bool]string{true: "every deployed defense kept victim and stray flips at zero", false: worst}[contained])
	res.check("attack_nonvacuous", nonvacuous,
		"every trial landed hammer bursts against extent-edge rows")
	for _, k := range []mitigation.Kind{mitigation.KindPARA, mitigation.KindSilverBullet} {
		if ki, ok := idx[k]; ok {
			a := &aggs[ki]
			res.check(k.String()+"_pays_in_energy", a.refreshes > 0 && a.blockedBytes == 0,
				fmt.Sprintf("%d proactive refreshes, no capacity blocked", a.refreshes))
		}
	}
	for _, k := range []mitigation.Kind{mitigation.KindCATT, mitigation.KindSiloz} {
		if ki, ok := idx[k]; ok {
			a := &aggs[ki]
			res.check(k.String()+"_pays_in_capacity", a.blockedBytes > 0 && a.refreshes == 0,
				fmt.Sprintf("%.1f MiB blocked, no injected refreshes", float64(a.blockedBytes)/float64(a.trials)/float64(geometry.MiB)))
		}
	}
	if ci, ok := idx[mitigation.KindCATT]; ok {
		if si, ok := idx[mitigation.KindSiloz]; ok {
			res.check("siloz_blocks_less_than_catt",
				aggs[si].blockedBytes < aggs[ci].blockedBytes,
				fmt.Sprintf("siloz blocks %.1f MiB vs catt's %.1f MiB: row-space guard bands cost pages at every extent edge, subarray-group alignment only at group boundaries",
					float64(aggs[si].blockedBytes)/float64(aggs[si].trials)/float64(geometry.MiB),
					float64(aggs[ci].blockedBytes)/float64(aggs[ci].trials)/float64(geometry.MiB)))
		}
	}

	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d attack trials across %d defenses; every defense contained the campaign the undefended "+
			"machine failed, each paying in its own currency (refresh energy, blocked capacity, or slowdown)",
		cells, len(kinds)))
	return res, nil
}

// workloadNames joins the suite's names for metadata.
func workloadNames(wls []workload.Workload) string {
	names := make([]string, len(wls))
	for i, w := range wls {
		names[i] = w.Name()
	}
	return strings.Join(names, ",")
}

// round3 rounds to three decimals so rendered cells and scalars stay tidy
// and byte-stable.
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }
