// Package experiments reruns the paper's evaluation (§7): every table and
// figure is an Experiment — Name() plus Run(ctx, cfg) (*Result, error) —
// registered in the package registry. The cmd/siloz-bench binary and the
// repository's benchmark suite dispatch from the registry and render the
// structured Results with RenderText / RenderJSON / RenderCSV; experiment
// bodies compute, they never print.
//
// RunAll schedules experiments onto a bounded worker Pool, fanning out
// both across experiments and across each experiment's repetitions.
// Per-rep RNG streams derive from the base seed and the rep index alone
// (rand.NewSource(seed + rep*salt)), and every parallel fan-out collects
// results by index, so a parallel run is bit-for-bit identical to a
// serial one.
package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/stats"
	"repro/internal/workload"
)

// PerfConfig parameterizes the performance experiments (Figs. 4-7).
type PerfConfig struct {
	// Geometry of the simulated server; zero value = the paper's server.
	Geometry geometry.Geometry
	// VMMemory is the benchmark VM's RAM (paper: 160 GiB).
	VMMemory uint64
	// Ops is logical operations per run.
	Ops int
	// Reps is repetitions per configuration (for confidence intervals).
	Reps int
	// MLPWindow is the simulated core's memory-level parallelism.
	MLPWindow int
	// Seed bases all per-rep seeds; rep i draws from
	// rand.NewSource(Seed + i*repSeedSalt) (see repSeed), so reps are
	// independent streams no matter which pool worker runs them.
	Seed int64
	// JitterSalt decorrelates timing noise between system configurations
	// (independent reruns on different kernels, as in the paper).
	JitterSalt int64
}

// DefaultPerfConfig mirrors the paper's setup: the dual-socket Skylake
// server with a 160 GiB, 40-vCPU VM on socket 0.
func DefaultPerfConfig() PerfConfig {
	return PerfConfig{
		Geometry:  geometry.Default(),
		VMMemory:  160 * geometry.GiB,
		Ops:       120_000,
		Reps:      5,
		MLPWindow: 10,
		Seed:      1,
	}
}

// QuickPerfConfig is a scaled-down configuration for tests.
func QuickPerfConfig() PerfConfig {
	cfg := DefaultPerfConfig()
	cfg.VMMemory = 6 * geometry.GiB
	cfg.Ops = 15_000
	cfg.Reps = 3
	return cfg
}

// perfProfile: performance experiments need no bit flips; use the no-TRR
// profile with transforms intact.
func perfProfile() dram.Profile { return dram.ProfileF() }

// bootWithVM boots a hypervisor and creates the benchmark VM.
func bootWithVM(cfg PerfConfig, mode core.Mode, subarrayRows int) (*core.Hypervisor, *core.VM, error) {
	h, err := core.Boot(core.Config{
		Geometry:      cfg.Geometry,
		Profiles:      []dram.Profile{perfProfile()},
		SubarrayRows:  subarrayRows,
		EPTProtection: ept.GuardRows,
	}, mode)
	if err != nil {
		return nil, nil, err
	}
	vm, err := h.CreateVM(core.Process{KVMPrivileged: true}, core.VMSpec{
		Name:   "bench",
		Socket: 0,
		// 4 GiB per logical core in the paper; here simply cfg.VMMemory.
		MemoryBytes: cfg.VMMemory,
		VCPUs:       cfg.Geometry.CoresPerSocket,
	})
	if err != nil {
		return nil, nil, err
	}
	return h, vm, nil
}

// llcBytes is the modelled last-level cache capacity (the Xeon Gold 6230
// has 27.5 MiB of L3; we round to 32 MiB).
const llcBytes = 32 * geometry.MiB

// workloadSeed is rep's access-stream seed: the workload's RNG is
// rand.New(rand.NewSource(workloadSeed(cfg, rep))).
func workloadSeed(cfg PerfConfig, rep int) int64 { return repSeed(cfg.Seed, rep) }

// jitterSeed seeds rep's memory-controller timing noise; the jitter salt
// decorrelates system configurations, nameSalt decorrelates workloads.
func jitterSeed(cfg PerfConfig, name string, rep int) int64 {
	return cfg.Seed + cfg.JitterSalt*92821 + int64(rep)*1009 + nameSalt(name) + 1
}

// measure runs a workload Reps times on a fresh controller each time,
// returning a sample of the chosen metric. Reps fan out onto the pool;
// each writes its own index of the sample, so the sample's value order is
// scheduling-independent. Workloads run behind a last-level cache model
// unless they declare themselves cache-bypassing (Intel MLC).
func measure(ctx context.Context, pool *Pool, cfg PerfConfig, vm *core.VM, w workload.Workload, metric func(memctrl.Result) float64) (stats.Sample, error) {
	return measureDefended(ctx, pool, cfg, vm, w, metric, nil)
}

// measureDefended is measure with an activation-plane defense on the
// controller: defense(rep) builds the rep's instance (fresh per rep — a
// mitigation is scoped to one controller run). A nil defense, or one
// returning nil, measures undefended.
func measureDefended(ctx context.Context, pool *Pool, cfg PerfConfig, vm *core.VM, w workload.Workload, metric func(memctrl.Result) float64, defense func(rep int) mitigation.Mitigation) (stats.Sample, error) {
	s := stats.Sample{Name: w.Name(), Values: make([]float64, cfg.Reps)}
	bypass := false
	if b, ok := w.(interface{ BypassesCache() bool }); ok {
		bypass = b.BypassesCache()
	}
	err := pool.Map(ctx, cfg.Reps, func(rep int) error {
		var mit mitigation.Mitigation
		if defense != nil {
			mit = defense(rep)
		}
		ctrl, err := memctrl.New(memctrl.Config{
			Mapper:     vm.Hypervisor().Memory().Mapper(),
			Timing:     memctrl.DDR4_2933(),
			MLPWindow:  cfg.MLPWindow,
			HomeSocket: vm.Spec().Socket,
			JitterSeed: jitterSeed(cfg, w.Name(), rep),
			Mitigation: mit,
		})
		if err != nil {
			return err
		}
		var cache *memctrl.Cache
		if !bypass {
			if cache, err = memctrl.NewCache(llcBytes, 16); err != nil {
				return err
			}
		}
		res, err := workload.RunOnVM(vm, ctrl, cache, w, cfg.Ops, workloadSeed(cfg, rep))
		if err != nil {
			return err
		}
		s.Values[rep] = metric(res)
		return nil
	})
	return s, err
}

// nameSalt decorrelates timing noise across workloads.
func nameSalt(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h = (h ^ int64(c)) * 1099511628211
	}
	return h % 100003
}

// execTime is the execution-time metric (lower is better).
func execTime(r memctrl.Result) float64 { return r.TotalNs }

// throughput is the bandwidth metric (higher is better); Figs. 5/7 plot
// overhead, so we invert to keep "positive = worse".
func throughput(r memctrl.Result) float64 { return 1 / r.ThroughputGBs() }

// Figure is one computed bar chart: baseline-normalized overheads.
type Figure struct {
	// Title names the figure (e.g. "Figure 4").
	Title string
	// Bars are per-workload overheads with confidence intervals.
	Bars []stats.Normalized
	// GeomeanPct is the geometric-mean overhead across bars.
	GeomeanPct float64
}

// geomeanPct computes the geometric mean of the bars' ratios as a percent.
func geomeanPct(bars []stats.Normalized) float64 {
	ratios := make([]float64, len(bars))
	for i, b := range bars {
		ratios[i] = 1 + b.OverheadPct/100
	}
	return 100 * (stats.GeoMean(ratios) - 1)
}

// WithinHalfPercent reports whether the figure reproduces the paper's
// headline claim: geometric-mean overhead within ±0.5%.
func (f Figure) WithinHalfPercent() bool {
	return f.GeomeanPct < 0.5 && f.GeomeanPct > -0.5
}

// series converts the figure's bars into a renderable Series.
func (f Figure) series(name string) Series {
	s := Series{Name: name, Unit: "%"}
	for _, bar := range f.Bars {
		s.Points = append(s.Points, Point{Label: bar.Name, Value: bar.OverheadPct, CI: bar.CIPct})
	}
	s.Points = append(s.Points, Point{Label: "geomean", Value: f.GeomeanPct})
	return s
}
