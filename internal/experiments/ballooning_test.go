package experiments

import (
	"context"
	"testing"
)

// TestBallooningExperiment runs the quick sweep and requires every
// reservation-release check to pass.
func TestBallooningExperiment(t *testing.T) {
	cfg := Config{Balloon: QuickBalloonConfig()}
	r, err := ballooningExp{}.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(r.Rows))
	}
	for _, c := range r.Checks {
		if !c.Pass {
			t.Errorf("check %q failed: %s", c.Name, c.Detail)
		}
	}
	if v, err := r.Scalar("total_nodes_released"); err != nil || v != 1 {
		t.Errorf("total_nodes_released = %v (%v), want 1", v, err)
	}
}
