package experiments

import (
	"fmt"
	"strings"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/memctrl"
	"repro/internal/subarray"
)

// BLPResult quantifies the §4.1 design point: subarray groups preserve
// bank-level parallelism, whereas isolating a VM to a single bank (the
// naive alternative) destroys it.
type BLPResult struct {
	// InterleavedNs and SerialNs are stream completion times.
	InterleavedNs, SerialNs float64
	// SpeedupPct is how much faster the interleaved mapping is.
	SpeedupPct float64
}

// Render formats the result.
func (r BLPResult) Render() string {
	return fmt.Sprintf(
		"Bank-level parallelism ablation (§4.1)\ninterleaved (subarray group): %.2f ms\nsingle-bank isolation:        %.2f ms\nBLP benefit:                  +%.1f%% (paper cites >18%%)\n",
		r.InterleavedNs/1e6, r.SerialNs/1e6, r.SpeedupPct)
}

// BankLevelParallelism streams over both mappings.
func BankLevelParallelism(g geometry.Geometry, ops int) (BLPResult, error) {
	var out BLPResult
	run := func(mapper addr.Mapper) (float64, error) {
		ctrl, err := memctrl.New(memctrl.Config{
			Mapper: mapper, Timing: memctrl.DDR4_2933(), MLPWindow: 10,
		})
		if err != nil {
			return 0, err
		}
		for i := 0; i < ops; i++ {
			if _, err := ctrl.Do(memctrl.Access{PA: uint64(i) * geometry.CacheLineSize}); err != nil {
				return 0, err
			}
		}
		return ctrl.Result().TotalNs, nil
	}
	sky, err := addr.NewSkylakeMapper(g)
	if err != nil {
		return out, err
	}
	lin, err := addr.NewLinearMapper(g)
	if err != nil {
		return out, err
	}
	if out.InterleavedNs, err = run(sky); err != nil {
		return out, err
	}
	if out.SerialNs, err = run(lin); err != nil {
		return out, err
	}
	out.SpeedupPct = 100 * (out.SerialNs/out.InterleavedNs - 1)
	return out, nil
}

// OverheadRow is one row of the §3/§5.4 DRAM-reservation comparison.
type OverheadRow struct {
	Scheme      string
	ReservedPct float64
	Scope       string
}

// OverheadComparison reproduces the paper's accounting: guard-row schemes
// (ZebRAM at 1 and 4 guard rows per protected row) versus Siloz's EPT block
// and worst-case artificial-group reservations.
func OverheadComparison(g geometry.Geometry) []OverheadRow {
	rowGroups := float64(core.EPTBlockRowGroups)
	eptPct := 100 * rowGroups * float64(g.RowBytes) / float64(g.BankBytes())
	return []OverheadRow{
		{Scheme: "ZebRAM (1 guard/row)", ReservedPct: 50, Scope: "entire protected region"},
		{Scheme: "ZebRAM (4 guards/row, modern)", ReservedPct: 80, Scope: "entire protected region"},
		{Scheme: "Siloz EPT block (b=32)", ReservedPct: eptPct, Scope: "whole DRAM"},
		{Scheme: "Siloz artificial groups (512-row)", ReservedPct: 100 * 8.0 / 512, Scope: "non-power-of-2 DIMMs only"},
		{Scheme: "Siloz artificial groups (2048-row)", ReservedPct: 100 * 8.0 / 2048, Scope: "non-power-of-2 DIMMs only"},
		{Scheme: "Siloz power-of-2 subarrays", ReservedPct: eptPct, Scope: "whole DRAM (EPT block only)"},
	}
}

// RenderOverheads formats the comparison.
func RenderOverheads(rows []OverheadRow) string {
	var b strings.Builder
	b.WriteString("DRAM reserved for protection (§3, §5.4)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %8.3f%%  (%s)\n", r.Scheme, r.ReservedPct, r.Scope)
	}
	return b.String()
}

// SoftRefreshComparison reruns the §8.3 engineering experiment that led
// Siloz to guard rows instead of software refresh.
func SoftRefreshComparison() (task, tick ept.SoftRefreshReport) {
	task = ept.SimulateSoftRefresh(ept.DefaultSoftRefreshConfig(ept.TaskScheduled))
	tick = ept.SimulateSoftRefresh(ept.DefaultSoftRefreshConfig(ept.TickInterrupt))
	return task, tick
}

// RemapRow summarizes §6 handling for one subarray size.
type RemapRow struct {
	// SubarrayRows is the true subarray size.
	SubarrayRows int
	// Artificial reports whether artificial groups are needed.
	Artificial bool
	// ManagedRows is the managed group size after rounding.
	ManagedRows int
	// ReservedPct is the DRAM share offlined for boundary guards.
	ReservedPct float64
}

// RemapHandling sweeps subarray sizes over a geometry whose bank size
// accommodates them, reporting the §6 reservations. Power-of-two commodity
// sizes need nothing; others form artificial groups with guard rows.
func RemapHandling() ([]RemapRow, error) {
	var out []RemapRow
	for _, rows := range []int{512, 640, 768, 1024, 1280, 2048} {
		g := geometry.Geometry{
			Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
			BanksPerRank: 8, RowBytes: 8 * geometry.KiB,
			RowsPerSubarray: rows,
		}
		// Bank must be a multiple of both the size and its round-up.
		lcm := rows * nextPow2(rows) / gcd(rows, nextPow2(rows))
		g.RowsPerBank = lcm
		for g.RowsPerBank < 4*nextPow2(rows) {
			g.RowsPerBank += lcm
		}
		mapper, err := addr.NewSkylakeMapper(g)
		if err != nil {
			return nil, fmt.Errorf("size %d: %w", rows, err)
		}
		layout, err := subarray.NewLayout(g, mapper)
		if err != nil {
			return nil, fmt.Errorf("size %d: %w", rows, err)
		}
		guards := layout.BoundaryGuardRows(addr.AllTransforms())
		out = append(out, RemapRow{
			SubarrayRows: rows,
			Artificial:   layout.Artificial(),
			ManagedRows:  layout.RowsPerGroup(),
			ReservedPct:  100 * float64(len(guards)) / float64(g.RowsPerBank),
		})
	}
	return out, nil
}

// RenderRemaps formats the sweep.
func RenderRemaps(rows []RemapRow) string {
	var b strings.Builder
	b.WriteString("Media-to-internal remap handling (§6)\n")
	fmt.Fprintf(&b, "%10s %12s %12s %12s\n", "subarray", "artificial", "managed", "reserved")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %12v %12d %11.2f%%\n", r.SubarrayRows, r.Artificial, r.ManagedRows, r.ReservedPct)
	}
	return b.String()
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GiBPageResult reproduces the §4.2 1 GiB page analysis.
type GiBPageResult struct {
	// SingleSetFraction is the share of 1 GiB physical ranges mapping
	// into a single 3 GiB set of consecutive subarray groups.
	SingleSetFraction float64
}

// Render formats the analysis.
func (r GiBPageResult) Render() string {
	return fmt.Sprintf("1 GiB page analysis (§4.2): %.1f%% of 1 GiB ranges map to a single 3 GiB group set (paper: at least 1/3)\n",
		100*r.SingleSetFraction)
}

// GiBPages scans every 1 GiB physical range of the geometry.
func GiBPages(g geometry.Geometry) (GiBPageResult, error) {
	var out GiBPageResult
	m, err := addr.NewSkylakeMapper(g)
	if err != nil {
		return out, err
	}
	const setBytes = 3 * geometry.GiB
	nPages := g.TotalBytes() / geometry.PageSize1G
	single := 0
	for p := int64(0); p < nPages; p++ {
		base := uint64(p * geometry.PageSize1G)
		lo, hi := int64(1)<<62, int64(-1)
		for off := int64(0); off < geometry.PageSize1G; off += m.ChunkBytes() {
			end := off + m.ChunkBytes()
			if end > geometry.PageSize1G {
				end = geometry.PageSize1G
			}
			for _, o := range []uint64{uint64(off), uint64(end) - geometry.CacheLineSize} {
				ma, err := m.Decode(base + o)
				if err != nil {
					return out, err
				}
				mo := int64(ma.Row) * g.RowGroupBytes()
				if mo < lo {
					lo = mo
				}
				if mo > hi {
					hi = mo
				}
			}
		}
		if lo/setBytes == hi/setBytes {
			single++
		}
	}
	out.SingleSetFraction = float64(single) / float64(nPages)
	return out, nil
}
