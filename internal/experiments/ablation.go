package experiments

import (
	"context"
	"fmt"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/memctrl"
	"repro/internal/subarray"
)

// BLPResult quantifies the §4.1 design point: subarray groups preserve
// bank-level parallelism, whereas isolating a VM to a single bank (the
// naive alternative) destroys it.
type BLPResult struct {
	// InterleavedNs and SerialNs are stream completion times.
	InterleavedNs, SerialNs float64
	// SpeedupPct is how much faster the interleaved mapping is.
	SpeedupPct float64
}

// BankLevelParallelism streams over both mappings.
func BankLevelParallelism(ctx context.Context, g geometry.Geometry, ops int) (BLPResult, error) {
	var out BLPResult
	run := func(mapper addr.Mapper) (float64, error) {
		ctrl, err := memctrl.New(memctrl.Config{
			Mapper: mapper, Timing: memctrl.DDR4_2933(), MLPWindow: 10,
		})
		if err != nil {
			return 0, err
		}
		for i := 0; i < ops; i++ {
			if i%8192 == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			if _, err := ctrl.Do(memctrl.Access{PA: uint64(i) * geometry.CacheLineSize}); err != nil {
				return 0, err
			}
		}
		return ctrl.Result().TotalNs, nil
	}
	sky, err := addr.NewMapper(g, addr.KindSkylake)
	if err != nil {
		return out, err
	}
	lin, err := addr.NewMapper(g, addr.KindLinear)
	if err != nil {
		return out, err
	}
	if out.InterleavedNs, err = run(sky); err != nil {
		return out, err
	}
	if out.SerialNs, err = run(lin); err != nil {
		return out, err
	}
	out.SpeedupPct = 100 * (out.SerialNs/out.InterleavedNs - 1)
	return out, nil
}

// blpExp is the "blp" experiment: the §4.1 bank-level parallelism ablation.
type blpExp struct{}

func (blpExp) Name() string { return "blp" }

func (blpExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	var res BLPResult
	err := cfg.Pool.Run(ctx, func() error {
		var err error
		res, err = BankLevelParallelism(ctx, cfg.Perf.Geometry, 200_000)
		return err
	})
	if err != nil {
		return nil, err
	}
	r := &Result{Name: "blp", Title: "Bank-level parallelism ablation (§4.1)"}
	r.scalar("interleaved_ms", res.InterleavedNs/1e6)
	r.scalar("single_bank_ms", res.SerialNs/1e6)
	r.scalar("blp_benefit_pct", res.SpeedupPct)
	r.check("blp_above_18pct", res.SpeedupPct > 18,
		fmt.Sprintf("interleaving is %.1f%% faster; paper cites >18%%", res.SpeedupPct))
	return r, nil
}

// OverheadRow is one row of the §3/§5.4 DRAM-reservation comparison.
type OverheadRow struct {
	Scheme      string
	ReservedPct float64
	Scope       string
}

// OverheadComparison reproduces the paper's accounting: guard-row schemes
// (ZebRAM at 1 and 4 guard rows per protected row) versus Siloz's EPT block
// and worst-case artificial-group reservations.
func OverheadComparison(g geometry.Geometry) []OverheadRow {
	rowGroups := float64(core.EPTBlockRowGroups)
	eptPct := 100 * rowGroups * float64(g.RowBytes) / float64(g.BankBytes())
	return []OverheadRow{
		{Scheme: "ZebRAM (1 guard/row)", ReservedPct: 50, Scope: "entire protected region"},
		{Scheme: "ZebRAM (4 guards/row, modern)", ReservedPct: 80, Scope: "entire protected region"},
		{Scheme: "Siloz EPT block (b=32)", ReservedPct: eptPct, Scope: "whole DRAM"},
		{Scheme: "Siloz artificial groups (512-row)", ReservedPct: 100 * 8.0 / 512, Scope: "non-power-of-2 DIMMs only"},
		{Scheme: "Siloz artificial groups (2048-row)", ReservedPct: 100 * 8.0 / 2048, Scope: "non-power-of-2 DIMMs only"},
		{Scheme: "Siloz power-of-2 subarrays", ReservedPct: eptPct, Scope: "whole DRAM (EPT block only)"},
	}
}

// overheadExp is the "overhead" experiment: DRAM reserved for protection.
type overheadExp struct{}

func (overheadExp) Name() string { return "overhead" }

func (overheadExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &Result{
		Name:    "overhead",
		Title:   "DRAM reserved for protection (§3, §5.4)",
		Columns: []string{"reserved", "scope"},
		Units:   []string{"%", ""},
	}
	for _, row := range OverheadComparison(cfg.Perf.Geometry) {
		r.Rows = append(r.Rows, Row{Label: row.Scheme, Cells: []any{row.ReservedPct, row.Scope}})
		if row.Scheme == "Siloz EPT block (b=32)" {
			r.scalar("siloz_ept_reserved_pct", row.ReservedPct)
		}
	}
	return r, nil
}

// SoftRefreshComparison reruns the §8.3 engineering experiment that led
// Siloz to guard rows instead of software refresh.
func SoftRefreshComparison() (task, tick ept.SoftRefreshReport) {
	task = ept.SimulateSoftRefresh(ept.DefaultSoftRefreshConfig(ept.TaskScheduled))
	tick = ept.SimulateSoftRefresh(ept.DefaultSoftRefreshConfig(ept.TickInterrupt))
	return task, tick
}

// softRefreshExp is the "softrefresh" experiment: §8.3 refresh deadlines.
type softRefreshExp struct{}

func (softRefreshExp) Name() string { return "softrefresh" }

func (softRefreshExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	var task, tick ept.SoftRefreshReport
	err := cfg.Pool.Run(ctx, func() error {
		task, tick = SoftRefreshComparison()
		return nil
	})
	if err != nil {
		return nil, err
	}
	r := &Result{
		Name:    "softrefresh",
		Title:   "Software refresh deadlines (§8.3)",
		Columns: []string{"summary"},
	}
	r.Rows = append(r.Rows,
		Row{Label: "task-scheduled", Cells: []any{task.String()}},
		Row{Label: "tick-interrupt", Cells: []any{tick.String()}},
	)
	r.scalar("task_miss_rate", task.MissRate())
	r.scalar("tick_miss_rate", tick.MissRate())
	r.check("deadlines_missed", task.MissedDeadlines > 0 && tick.MissedDeadlines > 0,
		"neither model meets 1 ms deadlines reliably")
	r.Notes = append(r.Notes, "conclusion: software refresh cannot meet 1 ms deadlines; Siloz uses guard rows instead")
	return r, nil
}

// RemapRow summarizes §6 handling for one subarray size.
type RemapRow struct {
	// SubarrayRows is the true subarray size.
	SubarrayRows int
	// Artificial reports whether artificial groups are needed.
	Artificial bool
	// ManagedRows is the managed group size after rounding.
	ManagedRows int
	// ReservedPct is the DRAM share offlined for boundary guards.
	ReservedPct float64
}

// RemapHandling sweeps subarray sizes over a geometry whose bank size
// accommodates them, reporting the §6 reservations. Power-of-two commodity
// sizes need nothing; others form artificial groups with guard rows.
func RemapHandling(ctx context.Context) ([]RemapRow, error) {
	var out []RemapRow
	for _, rows := range []int{512, 640, 768, 1024, 1280, 2048} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g := geometry.Geometry{
			Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
			BanksPerRank: 8, RowBytes: 8 * geometry.KiB,
			RowsPerSubarray: rows,
		}
		// Bank must be a multiple of both the size and its round-up.
		lcm := rows * nextPow2(rows) / gcd(rows, nextPow2(rows))
		g.RowsPerBank = lcm
		for g.RowsPerBank < 4*nextPow2(rows) {
			g.RowsPerBank += lcm
		}
		mapper, err := addr.NewMapper(g, addr.KindSkylake)
		if err != nil {
			return nil, fmt.Errorf("size %d: %w", rows, err)
		}
		layout, err := subarray.NewLayout(g, mapper)
		if err != nil {
			return nil, fmt.Errorf("size %d: %w", rows, err)
		}
		guards := layout.BoundaryGuardRows(addr.AllTransforms())
		out = append(out, RemapRow{
			SubarrayRows: rows,
			Artificial:   layout.Artificial(),
			ManagedRows:  layout.RowsPerGroup(),
			ReservedPct:  100 * float64(len(guards)) / float64(g.RowsPerBank),
		})
	}
	return out, nil
}

// remapsExp is the "remaps" experiment: §6 media-to-internal remap handling.
type remapsExp struct{}

func (remapsExp) Name() string { return "remaps" }

func (remapsExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	var rows []RemapRow
	err := cfg.Pool.Run(ctx, func() error {
		var err error
		rows, err = RemapHandling(ctx)
		return err
	})
	if err != nil {
		return nil, err
	}
	r := &Result{
		Name:    "remaps",
		Title:   "Media-to-internal remap handling (§6)",
		Columns: []string{"artificial", "managed rows", "reserved"},
		Units:   []string{"", "", "%"},
	}
	maxReserved := 0.0
	for _, row := range rows {
		r.Rows = append(r.Rows, Row{
			Label: fmt.Sprintf("%d-row subarrays", row.SubarrayRows),
			Cells: []any{row.Artificial, row.ManagedRows, row.ReservedPct},
		})
		if row.ReservedPct > maxReserved {
			maxReserved = row.ReservedPct
		}
	}
	r.scalar("max_reserved_pct", maxReserved)
	return r, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GiBPageResult reproduces the §4.2 1 GiB page analysis.
type GiBPageResult struct {
	// SingleSetFraction is the share of 1 GiB physical ranges mapping
	// into a single 3 GiB set of consecutive subarray groups.
	SingleSetFraction float64
}

// GiBPages scans every 1 GiB physical range of the geometry.
func GiBPages(ctx context.Context, g geometry.Geometry) (GiBPageResult, error) {
	var out GiBPageResult
	m, err := addr.NewSkylakeMapper(g)
	if err != nil {
		return out, err
	}
	const setBytes = 3 * geometry.GiB
	nPages := g.TotalBytes() / geometry.PageSize1G
	single := 0
	for p := int64(0); p < nPages; p++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		base := uint64(p * geometry.PageSize1G)
		lo, hi := int64(1)<<62, int64(-1)
		for off := int64(0); off < geometry.PageSize1G; off += m.ChunkBytes() {
			end := off + m.ChunkBytes()
			if end > geometry.PageSize1G {
				end = geometry.PageSize1G
			}
			for _, o := range []uint64{uint64(off), uint64(end) - geometry.CacheLineSize} {
				ma, err := m.Decode(base + o)
				if err != nil {
					return out, err
				}
				mo := int64(ma.Row) * g.RowGroupBytes()
				if mo < lo {
					lo = mo
				}
				if mo > hi {
					hi = mo
				}
			}
		}
		if lo/setBytes == hi/setBytes {
			single++
		}
	}
	out.SingleSetFraction = float64(single) / float64(nPages)
	return out, nil
}

// gbPagesExp is the "gbpages" experiment: the §4.2 1 GiB page analysis.
type gbPagesExp struct{}

func (gbPagesExp) Name() string { return "gbpages" }

func (gbPagesExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	var res GiBPageResult
	err := cfg.Pool.Run(ctx, func() error {
		var err error
		res, err = GiBPages(ctx, cfg.Perf.Geometry)
		return err
	})
	if err != nil {
		return nil, err
	}
	r := &Result{Name: "gbpages", Title: "1 GiB page analysis (§4.2)"}
	r.scalar("single_set_fraction", res.SingleSetFraction)
	r.check("at_least_one_third", res.SingleSetFraction >= 1.0/3,
		fmt.Sprintf("%.1f%% of 1 GiB ranges map to a single 3 GiB group set; paper: at least 1/3", 100*res.SingleSetFraction))
	return r, nil
}
