package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/guest"
	"repro/internal/numa"
)

// HotplugConfig parameterizes the "hotplug" experiment: growing a running
// VM beyond its boot-time exclusive reservation by adopting additional
// subarray-group nodes, swept across growth targets and socket pressure
// (how many of the home socket's guest nodes neighbor tenants already own).
type HotplugConfig struct {
	// Geometry of the simulated server; zero value = the migration lab's
	// two-socket box (64 MiB subarray groups, 3 guest nodes per socket).
	Geometry geometry.Geometry
	// VMBytes is the grown VM's boot-time RAM; the default fills exactly
	// one guest node, so any growth must adopt.
	VMBytes uint64
	// GrowTargets are the ResizeVM targets swept (total usable RAM after
	// the grow, > VMBytes).
	GrowTargets []uint64
	// PressureNodes sweeps how many home-socket guest nodes are
	// pre-occupied by neighbor tenants before the grow. Higher pressure
	// shrinks the adoptable pool until growth is refused outright.
	PressureNodes []int
	// ScrubGiBps is the modeled scrub bandwidth. Adoption latency is
	// reported as scrubbed bytes divided by this figure — a pure function
	// of the byte count, never a wall-clock measurement.
	ScrubGiBps float64
	// Seed drives which pages the previous occupant of the adoptable nodes
	// dirties before it is destroyed.
	Seed int64
}

// DefaultHotplugConfig sweeps one- and two-node growths against an idle and
// a contended home socket.
func DefaultHotplugConfig() HotplugConfig {
	return HotplugConfig{
		VMBytes:       64 * geometry.MiB,
		GrowTargets:   []uint64{128 * geometry.MiB, 192 * geometry.MiB},
		PressureNodes: []int{0, 1},
		ScrubGiBps:    12,
		Seed:          29,
	}
}

// QuickHotplugConfig trims the sweep for smoke runs.
func QuickHotplugConfig() HotplugConfig {
	cfg := DefaultHotplugConfig()
	cfg.GrowTargets = []uint64{128 * geometry.MiB}
	cfg.PressureNodes = []int{0}
	return cfg
}

// hotplugRun is one cell of the sweep.
type hotplugRun struct {
	target   uint64
	pressure int
}

func (r hotplugRun) label() string {
	return fmt.Sprintf("target=%dMiB pressure=%d", r.target/geometry.MiB, r.pressure)
}

// hotplugRowResult is one completed run, index-addressed for the pool.
type hotplugRowResult struct {
	run           hotplugRun
	feasible      bool // enough unowned home-socket nodes for the growth
	grew          bool // the grow succeeded
	refusedCap    bool // refused with core.ErrCapacityExhausted
	adopted       int  // nodes adopted by the grow
	previewAdopt  int  // nodes PreviewResize predicted it would adopt
	scrubBytes    uint64
	adoptMs       float64 // modeled adoption latency
	bankZero      bool    // the hot-added range reads all-zero
	guestExtends  bool    // Process.Map beyond the old limit: refused before, works after
	dataIntact    bool    // pre-grow guest data survives
	stateRestored bool    // refused grows leave size and node set unchanged
	probeBefore   bool    // probe tenant admitted before the grow
	probeAfter    bool    // probe tenant admitted after the grow
}

// runHotplug boots a fresh Siloz system, applies socket pressure, dirties
// the adoptable nodes with a departed tenant, then drives a guest-visible
// grow end to end — preview, ResizeVM dispatch to hotplug, kernel onlining
// the bank — verifying isolation, scrubbing, and rollback at each step.
func runHotplug(cfg HotplugConfig, run hotplugRun, seed int64) (*hotplugRowResult, error) {
	g := cfg.Geometry
	if g.Sockets == 0 {
		g = migrationLabGeometry()
	}
	h, err := core.Boot(core.Config{
		Geometry:      g,
		Profiles:      []dram.Profile{migrationLabProfile()},
		EPTProtection: ept.GuardRows,
	}, core.ModeSiloz)
	if err != nil {
		return nil, err
	}
	kvm := core.Process{CGroup: "kvm", KVMPrivileged: true}

	// Count one guest node's capacity so pressure and feasibility are
	// expressed in whole subarray groups.
	guestNodes := 0
	var nodeBytes uint64
	for _, o := range h.Topology().NodesOnSocket(0, numa.GuestReserved) {
		a, aerr := h.Allocator(o.ID)
		if aerr != nil {
			return nil, aerr
		}
		nodeBytes = a.TotalBytes()
		guestNodes++
	}

	// Socket pressure: neighbor tenants each own one home-socket node.
	for i := 0; i < run.pressure; i++ {
		spec := core.VMSpec{Name: fmt.Sprintf("nbr%d", i), Socket: 0, MemoryBytes: nodeBytes}
		if _, err := h.CreateVM(kvm, spec); err != nil {
			return nil, fmt.Errorf("pressure VM %d: %w", i, err)
		}
	}

	vm, err := h.CreateVM(kvm, core.VMSpec{Name: "plug", Socket: 0, MemoryBytes: cfg.VMBytes})
	if err != nil {
		return nil, err
	}
	k := guest.NewKernel(vm)

	// A departed tenant dirties the adoptable nodes first: hot-added frames
	// must still reach the guest all-zero whatever they held before.
	freeNodes := guestNodes - run.pressure - int((cfg.VMBytes+nodeBytes-1)/nodeBytes)
	payload := make([]byte, 4*geometry.KiB)
	for i := range payload {
		payload[i] = byte(i*11) | 1
	}
	if freeNodes > 0 {
		prev, err := h.CreateVM(kvm, core.VMSpec{Name: "departed", Socket: 0, MemoryBytes: uint64(freeNodes) * nodeBytes})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		pages := int(prev.Spec().MemoryBytes / geometry.PageSize2M)
		for _, p := range rng.Perm(pages)[:pages/2] {
			if err := prev.WriteGuest(uint64(p)*geometry.PageSize2M, payload); err != nil {
				return nil, err
			}
		}
		if err := h.DestroyVM("departed"); err != nil {
			return nil, err
		}
	}

	// Pre-grow guest state: a payload that must survive, and a mapping
	// probe proving GPAs beyond the boot reservation are unusable.
	if err := vm.WriteGuest(512, payload); err != nil {
		return nil, err
	}
	proc, err := k.Spawn()
	if err != nil {
		return nil, err
	}
	const probeGVA = 0x4000_0000
	res := &hotplugRowResult{run: run, dataIntact: true, bankZero: true, stateRestored: true}
	res.guestExtends = errors.Is(proc.Map(probeGVA, cfg.VMBytes), guest.ErrOutOfRange)

	needNodes := int((run.target - cfg.VMBytes + nodeBytes - 1) / nodeBytes)
	res.feasible = needNodes <= freeNodes

	probe := core.VMSpec{Name: "probe", Socket: 0, MemoryBytes: nodeBytes}
	admit := func() bool {
		if _, err := h.CreateVM(kvm, probe); err != nil {
			return false
		}
		return h.DestroyVM("probe") == nil
	}
	res.probeBefore = admit()

	if plan, err := h.PreviewResize("plug", run.target); err == nil {
		res.previewAdopt = len(plan.AdoptedNodes)
	}

	nodesBefore := len(vm.Nodes())
	addBytes := run.target - cfg.VMBytes
	bank, err := k.HotplugBank(addBytes)
	switch {
	case err == nil:
		res.grew = true
		res.adopted = len(vm.Nodes()) - nodesBefore
		res.scrubBytes = addBytes
		res.adoptMs = float64(res.scrubBytes) / (cfg.ScrubGiBps * float64(geometry.GiB)) * 1e3

		// The hot-added bank must read all-zero and be guest-usable.
		buf := make([]byte, geometry.PageSize4K)
		for off := uint64(0); off < bank.Bytes; off += geometry.PageSize2M {
			if err := vm.ReadGuest(bank.Start+off, buf); err != nil {
				return nil, err
			}
			for _, b := range buf {
				if b != 0 {
					res.bankZero = false
				}
			}
		}
		res.guestExtends = res.guestExtends && proc.Map(probeGVA, bank.Start) == nil
		if res.guestExtends {
			if err := proc.Write(probeGVA, payload); err != nil {
				res.guestExtends = false
			}
		}
	case errors.Is(err, core.ErrCapacityExhausted):
		res.refusedCap = true
		res.stateRestored = len(vm.Nodes()) == nodesBefore &&
			vm.Spec().MemoryBytes == cfg.VMBytes && k.LimitBytes() == cfg.VMBytes
	default:
		return nil, fmt.Errorf("grow to %d: %w", run.target, err)
	}
	res.probeAfter = admit()

	got := make([]byte, len(payload))
	if err := vm.ReadGuest(512, got); err != nil {
		return nil, err
	}
	for i := range got {
		if got[i] != payload[i] {
			res.dataIntact = false
		}
	}
	return res, nil
}

// hotplugExp is the "hotplug" experiment: guest-visible memory hot-add via
// the resize facade — nodes adopted beyond the boot reservation, scrub
// cost, and the admission pool's capacity before and after.
type hotplugExp struct{}

func (hotplugExp) Name() string { return "hotplug" }

func (hotplugExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	hc := cfg.Hotplug
	if len(hc.GrowTargets) == 0 || len(hc.PressureNodes) == 0 {
		hc = DefaultHotplugConfig()
	}
	if hc.ScrubGiBps <= 0 {
		hc.ScrubGiBps = DefaultHotplugConfig().ScrubGiBps
	}
	var runs []hotplugRun
	for _, target := range hc.GrowTargets {
		for _, p := range hc.PressureNodes {
			runs = append(runs, hotplugRun{target: target, pressure: p})
		}
	}
	results := make([]*hotplugRowResult, len(runs))
	err := cfg.Pool.Map(ctx, len(runs), func(i int) error {
		var err error
		results[i], err = runHotplug(hc, runs[i], repSeed(hc.Seed, i))
		return err
	})
	if err != nil {
		return nil, err
	}

	r := &Result{
		Name:    "hotplug",
		Title:   "Memory hotplug: growing a VM beyond its boot-time reservation",
		Columns: []string{"adopted nodes", "scrubbed", "modeled adopt", "refused", "probe before", "probe after"},
		Units:   []string{"", "MiB", "ms", "", "", ""},
		Metadata: map[string]string{
			"adopt_model": fmt.Sprintf("scrubbed bytes / %.0f GiB/s", hc.ScrubGiBps),
			"vm":          fmt.Sprintf("%d MiB at boot", hc.VMBytes/geometry.MiB),
		},
	}
	growOK, zeroOK, extendOK, intactOK, refuseOK, previewOK := true, true, true, true, true, true
	var totalAdopted, refused int
	var maxAdopt float64
	for _, res := range results {
		r.Rows = append(r.Rows, Row{
			Label: res.run.label(),
			Cells: []any{res.adopted, res.scrubBytes / geometry.MiB, res.adoptMs,
				res.refusedCap, res.probeBefore, res.probeAfter},
		})
		if res.feasible {
			growOK = growOK && res.grew
			zeroOK = zeroOK && res.bankZero
			extendOK = extendOK && res.guestExtends
			previewOK = previewOK && res.adopted == res.previewAdopt
		} else {
			refuseOK = refuseOK && res.refusedCap && res.stateRestored
			refused++
		}
		intactOK = intactOK && res.dataIntact
		totalAdopted += res.adopted
		if res.adoptMs > maxAdopt {
			maxAdopt = res.adoptMs
		}
	}
	r.scalar("total_nodes_adopted", float64(totalAdopted))
	r.scalar("max_adopt_ms", maxAdopt)
	r.scalar("refusal_rate", float64(refused)/float64(len(results)))
	r.check("feasible_grows_adopt", growOK,
		"every growth the admission pool can cover adopts nodes and commits")
	r.check("grow_matches_preview", previewOK,
		"PreviewResize predicts exactly the nodes each successful grow adopts")
	r.check("hot_added_zeroed", zeroOK,
		"the hot-added range reads all-zero even though a departed tenant dirtied the adopted nodes")
	r.check("guest_visible", extendOK,
		"Process.Map refuses GPAs beyond the boot reservation before the grow and accepts them after")
	r.check("guest_data_intact", intactOK,
		"pre-grow guest memory survives the hotplug")
	r.check("infeasible_grows_roll_back", refuseOK,
		"over-capacity growths fail with ErrCapacityExhausted and leave size, node set, and kernel limit unchanged")
	r.Notes = append(r.Notes,
		"hotplug is the balloon's dual: adoption consumes the admission pool, so probe admissions flip from accepted to refused as growth lands",
		"adoption latency is modeled from scrubbed bytes at fixed bandwidth, so identical runs emit identical results")
	return r, nil
}
