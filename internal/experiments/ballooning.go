package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/guest"
	"repro/internal/numa"
)

// BalloonConfig parameterizes the "ballooning" experiment: how much of an
// over-provisioned VM's exclusive reservation the balloon driver can return
// to the admission pool, and at what modeled scrub cost, as a function of
// the balloon target and of how much of the surrendered memory the guest
// had actually dirtied.
type BalloonConfig struct {
	// Geometry of the simulated server; zero value = the migration lab's
	// two-socket box (64 MiB subarray groups, 3 guest nodes per socket).
	Geometry geometry.Geometry
	// VMBytes is the ballooned VM's RAM; the default fills every guest
	// node of its home socket so any admission requires reclaim.
	VMBytes uint64
	// MinBytes is the VM's declared balloon floor (VMSpec.MinMemoryBytes).
	MinBytes uint64
	// Targets are the balloon sizes swept (bytes surrendered).
	Targets []uint64
	// TouchedFractions sweep how much of the surrendered range the guest
	// wrote before inflating — only touched pages need scrubbing.
	TouchedFractions []float64
	// ScrubGiBps is the modeled scrub bandwidth. Reclaim latency is
	// reported as scrubbed bytes divided by this figure — a pure function
	// of the byte count, never a wall-clock measurement.
	ScrubGiBps float64
	// Seed drives which surrendered pages the guest dirties.
	Seed int64
}

// DefaultBalloonConfig sweeps one- and two-node balloons across lightly and
// fully dirtied guests.
func DefaultBalloonConfig() BalloonConfig {
	return BalloonConfig{
		VMBytes:          192 * geometry.MiB,
		MinBytes:         64 * geometry.MiB,
		Targets:          []uint64{64 * geometry.MiB, 128 * geometry.MiB},
		TouchedFractions: []float64{0.25, 1},
		ScrubGiBps:       12,
		Seed:             13,
	}
}

// QuickBalloonConfig trims the sweep for smoke runs.
func QuickBalloonConfig() BalloonConfig {
	cfg := DefaultBalloonConfig()
	cfg.Targets = []uint64{64 * geometry.MiB}
	cfg.TouchedFractions = []float64{1}
	return cfg
}

// balloonRun is one cell of the sweep.
type balloonRun struct {
	target   uint64
	fraction float64
}

func (r balloonRun) label() string {
	return fmt.Sprintf("target=%dMiB touched=%.0f%%", r.target/geometry.MiB, r.fraction*100)
}

// balloonRowResult is one completed run, index-addressed for the pool.
type balloonRowResult struct {
	run           balloonRun
	nodesReleased int
	nodeBytes     uint64
	scrubBytes    uint64  // touched pages in the surrendered range × 2 MiB
	reclaimMs     float64 // modeled scrub latency
	admitted      bool    // tenant sized to the reclaimed nodes admitted
	releasedZero  bool    // every released node reads all-zero
	dataIntact    bool    // below-balloon guest data survived the cycle
	deflated      bool    // deflate re-adopted and restored pages are usable
}

// runBalloon boots a fresh Siloz system, fills a socket with one
// over-provisioned VM, drives the guest balloon driver end to end —
// inflate, tenant admission onto the released nodes, deflate — and verifies
// the reservation-release invariants at each step.
func runBalloon(cfg BalloonConfig, run balloonRun, seed int64) (*balloonRowResult, error) {
	g := cfg.Geometry
	if g.Sockets == 0 {
		g = migrationLabGeometry()
	}
	h, err := core.Boot(core.Config{
		Geometry:      g,
		Profiles:      []dram.Profile{migrationLabProfile()},
		EPTProtection: ept.GuardRows,
	}, core.ModeSiloz)
	if err != nil {
		return nil, err
	}
	vm, err := h.CreateVM(core.Process{CGroup: "kvm", KVMPrivileged: true}, core.VMSpec{
		Name: "bal", Socket: 0, MemoryBytes: cfg.VMBytes, MinMemoryBytes: cfg.MinBytes,
	})
	if err != nil {
		return nil, err
	}
	k := guest.NewKernel(vm)

	// Deterministic payload below the balloon: must survive the cycle.
	payload := make([]byte, 4*geometry.KiB)
	for i := range payload {
		payload[i] = byte(i*7) | 1
	}
	if err := vm.WriteGuest(512, payload); err != nil {
		return nil, err
	}
	// Dirty the configured fraction of the pages about to be surrendered;
	// only these enter the touched-page ledger and need scrubbing.
	surrStart := cfg.VMBytes - run.target
	surrPages := int(run.target / geometry.PageSize2M)
	touched := int(float64(surrPages)*run.fraction + 0.5)
	rng := rand.New(rand.NewSource(seed))
	for _, p := range rng.Perm(surrPages)[:touched] {
		if err := vm.WriteGuest(surrStart+uint64(p)*geometry.PageSize2M, payload); err != nil {
			return nil, err
		}
	}

	before := map[int]bool{}
	for _, n := range vm.Nodes() {
		before[n.ID] = true
	}
	if err := k.Balloon().SetTarget(run.target); err != nil {
		return nil, fmt.Errorf("inflate to %d: %w", run.target, err)
	}
	after := map[int]bool{}
	for _, n := range vm.Nodes() {
		after[n.ID] = true
	}
	var released []*numa.Node
	for id := range before {
		if !after[id] {
			n, err := h.Topology().Node(id)
			if err != nil {
				return nil, err
			}
			released = append(released, n)
		}
	}

	res := &balloonRowResult{
		run:           run,
		nodesReleased: len(released),
		scrubBytes:    uint64(touched) * geometry.PageSize2M,
		dataIntact:    true,
		releasedZero:  true,
	}
	res.reclaimMs = float64(res.scrubBytes) / (cfg.ScrubGiBps * float64(geometry.GiB)) * 1e3
	if len(released) > 0 {
		a, err := h.Allocator(released[0].ID)
		if err != nil {
			return nil, err
		}
		res.nodeBytes = a.TotalBytes()
	}

	// Every released node must read all-zero before a tenant lands on it.
	probe := make([]byte, geometry.PageSize4K)
	for _, n := range released {
		for _, r := range n.Ranges {
			for pa := r.Start; pa+geometry.PageSize4K <= r.End; pa += geometry.PageSize2M {
				if err := h.Memory().ReadPhys(pa, probe); err != nil {
					return nil, err
				}
				for _, b := range probe {
					if b != 0 {
						res.releasedZero = false
					}
				}
			}
		}
	}

	// The reclaimed capacity admits a tenant the full socket refused.
	tenant := core.VMSpec{Name: "tenant", Socket: 0, MemoryBytes: uint64(len(released)) * res.nodeBytes}
	if len(released) > 0 {
		if _, err := h.CreateVM(core.Process{CGroup: "kvm", KVMPrivileged: true}, tenant); err == nil {
			res.admitted = true
			if err := h.DestroyVM("tenant"); err != nil {
				return nil, err
			}
		}
	}

	// Deflate: re-adopt the capacity, then prove restored memory is zeroed
	// and writable and the pre-balloon payload survived.
	if err := k.Balloon().SetTarget(0); err == nil {
		res.deflated = true
		if err := vm.ReadGuest(surrStart, probe); err != nil {
			res.deflated = false
		}
		for _, b := range probe {
			if b != 0 {
				res.deflated = false
			}
		}
		if err := vm.WriteGuest(surrStart, payload); err != nil {
			res.deflated = false
		}
	}
	got := make([]byte, len(payload))
	if err := vm.ReadGuest(512, got); err != nil {
		return nil, err
	}
	for i := range got {
		if got[i] != payload[i] {
			res.dataIntact = false
		}
	}
	return res, nil
}

// ballooningExp is the "ballooning" experiment: partial reservation release
// via the guest balloon driver — nodes reclaimed, scrub cost, and admission
// of a new tenant onto the released subarray groups.
type ballooningExp struct{}

func (ballooningExp) Name() string { return "ballooning" }

func (ballooningExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	bc := cfg.Balloon
	if len(bc.Targets) == 0 || len(bc.TouchedFractions) == 0 {
		bc = DefaultBalloonConfig()
	}
	if bc.ScrubGiBps <= 0 {
		bc.ScrubGiBps = DefaultBalloonConfig().ScrubGiBps
	}
	var runs []balloonRun
	for _, target := range bc.Targets {
		for _, f := range bc.TouchedFractions {
			runs = append(runs, balloonRun{target: target, fraction: f})
		}
	}
	results := make([]*balloonRowResult, len(runs))
	err := cfg.Pool.Map(ctx, len(runs), func(i int) error {
		var err error
		results[i], err = runBalloon(bc, runs[i], repSeed(bc.Seed, i))
		return err
	})
	if err != nil {
		return nil, err
	}

	r := &Result{
		Name:    "ballooning",
		Title:   "Memory ballooning: partial reservation release and reclaim cost",
		Columns: []string{"nodes released", "reclaimed", "scrubbed", "modeled reclaim", "tenant admitted", "deflated"},
		Units:   []string{"", "MiB", "MiB", "ms", "", ""},
		Metadata: map[string]string{
			"reclaim_model": fmt.Sprintf("scrubbed bytes / %.0f GiB/s", bc.ScrubGiBps),
			"vm":            fmt.Sprintf("%d MiB, floor %d MiB", bc.VMBytes/geometry.MiB, bc.MinBytes/geometry.MiB),
		},
	}
	releaseOK, admitOK, zeroOK, intactOK, deflateOK := true, true, true, true, true
	var totalReleased int
	var maxReclaim float64
	for _, res := range results {
		reclaimed := uint64(res.nodesReleased) * res.nodeBytes
		r.Rows = append(r.Rows, Row{
			Label: res.run.label(),
			Cells: []any{res.nodesReleased, reclaimed / geometry.MiB, res.scrubBytes / geometry.MiB,
				res.reclaimMs, res.admitted, res.deflated},
		})
		// A whole-socket VM's surrendered range is node-aligned, so every
		// ballooned node must drain completely.
		if reclaimed != res.run.target {
			releaseOK = false
		}
		admitOK = admitOK && res.admitted
		zeroOK = zeroOK && res.releasedZero
		intactOK = intactOK && res.dataIntact
		deflateOK = deflateOK && res.deflated
		totalReleased += res.nodesReleased
		if res.reclaimMs > maxReclaim {
			maxReclaim = res.reclaimMs
		}
	}
	r.scalar("total_nodes_released", float64(totalReleased))
	r.scalar("max_reclaim_ms", maxReclaim)
	r.check("whole_nodes_released", releaseOK,
		"every surrendered subarray-group node drains and leaves the VM's domain")
	r.check("released_nodes_zeroed", zeroOK,
		"released nodes read all-zero before any tenant is admitted onto them")
	r.check("tenant_admitted", admitOK,
		"a tenant sized to the reclaimed nodes is admitted on the previously-full socket")
	r.check("guest_data_intact", intactOK,
		"guest memory below the balloon survives the inflate/deflate cycle")
	r.check("deflate_restores", deflateOK,
		"deflation re-adopts capacity and restored pages are zeroed and writable")
	r.Notes = append(r.Notes,
		"scrub cost scales with the touched-page ledger, not the balloon size: untouched pages skip scrubbing",
		"reclaim latency is modeled from scrubbed bytes at fixed bandwidth, so identical runs emit identical results")
	return r, nil
}
