package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/stats"
	"repro/internal/workload"
)

// fig4Workloads are the execution-time workloads of Fig. 4: redis+YCSB A-F,
// terasort, and the SPEC/PARSEC suites (reported as single aggregate bars).
func fig4Workloads() ([]workload.Workload, []suite) {
	singles := append(workload.AllYCSB(), workload.Terasort{})
	suites := []suite{
		{name: "spec", members: workload.SPECSuite()},
		{name: "parsec", members: workload.PARSECSuite()},
	}
	return singles, suites
}

// suite aggregates several workloads into one reported bar (geomean), the
// way the paper reports SPEC and PARSEC.
type suite struct {
	name    string
	members []workload.Workload
}

// fig5Workloads are the throughput workloads of Fig. 5.
func fig5Workloads() []workload.Workload {
	return append([]workload.Workload{workload.Memcached{}, workload.Sysbench{}}, workload.AllMLC()...)
}

// comparePerf measures every workload under two hypervisor variants and
// normalizes variant metrics to the reference.
func comparePerf(cfg PerfConfig, title string,
	refMode, varMode core.Mode, refRows, varRows int,
	singles []workload.Workload, suites []suite,
	metric func(memctrl.Result) float64) (Figure, error) {

	refCfg, varCfg := cfg, cfg
	refCfg.JitterSalt = 1 + 3*int64(refMode) + 17*int64(refRows)
	varCfg.JitterSalt = 2 + 5*int64(varMode) + 23*int64(varRows)

	refH, refVM, err := bootWithVM(cfg, refMode, refRows)
	if err != nil {
		return Figure{}, fmt.Errorf("booting reference: %w", err)
	}
	varH, varVM, err := bootWithVM(cfg, varMode, varRows)
	if err != nil {
		return Figure{}, fmt.Errorf("booting variant: %w", err)
	}
	_ = refH
	_ = varH

	fig := Figure{Title: title}
	addBar := func(name string, ref, vr stats.Sample) {
		n := stats.Normalize(vr, ref)
		n.Name = name
		fig.Bars = append(fig.Bars, n)
	}
	for _, w := range singles {
		ref, err := measure(refCfg, refVM, w, metric)
		if err != nil {
			return fig, err
		}
		vr, err := measure(varCfg, varVM, w, metric)
		if err != nil {
			return fig, err
		}
		addBar(w.Name(), ref, vr)
	}
	for _, s := range suites {
		// Geomean the members into one synthetic sample per rep.
		refAgg := stats.Sample{Name: s.name}
		varAgg := stats.Sample{Name: s.name}
		for rep := 0; rep < cfg.Reps; rep++ {
			repRef, repVar := refCfg, varCfg
			repRef.Reps, repVar.Reps = 1, 1
			repRef.Seed = cfg.Seed + int64(rep)*31
			repVar.Seed = repRef.Seed
			var refVals, varVals []float64
			for _, w := range s.members {
				ref, err := measure(repRef, refVM, w, metric)
				if err != nil {
					return fig, err
				}
				vr, err := measure(repVar, varVM, w, metric)
				if err != nil {
					return fig, err
				}
				refVals = append(refVals, ref.Values[0])
				varVals = append(varVals, vr.Values[0])
			}
			refAgg.Values = append(refAgg.Values, stats.GeoMean(refVals))
			varAgg.Values = append(varAgg.Values, stats.GeoMean(varVals))
		}
		addBar(s.name, refAgg, varAgg)
	}
	fig.GeomeanPct = geomeanPct(fig.Bars)
	return fig, nil
}

// Fig4ExecutionTime reproduces Figure 4: baseline-normalized execution time
// for Siloz across redis+YCSB, terasort, SPEC and PARSEC.
func Fig4ExecutionTime(cfg PerfConfig) (Figure, error) {
	singles, suites := fig4Workloads()
	return comparePerf(cfg, "Figure 4: baseline-normalized execution time overhead (Siloz)",
		core.ModeBaseline, core.ModeSiloz, 0, 0, singles, suites, execTime)
}

// Fig5Throughput reproduces Figure 5: baseline-normalized throughput
// overhead for Siloz across memcached, mySQL and Intel MLC modes.
func Fig5Throughput(cfg PerfConfig) (Figure, error) {
	return comparePerf(cfg, "Figure 5: baseline-normalized throughput overhead (Siloz)",
		core.ModeBaseline, core.ModeSiloz, 0, 0, fig5Workloads(), nil, throughput)
}

// SizeSensitivity reproduces Figures 6 and 7: Siloz-512 and Siloz-2048
// normalized to Siloz-1024 (§7.4), for both metrics.
type SizeSensitivity struct {
	Time512, Time2048 Figure
	Tput512, Tput2048 Figure
}

// Fig6And7SizeSensitivity runs the §7.4 sweep.
func Fig6And7SizeSensitivity(cfg PerfConfig) (SizeSensitivity, error) {
	var out SizeSensitivity
	singles, suites := fig4Workloads()
	var err error
	out.Time512, err = comparePerf(cfg, "Figure 6 (Siloz-512 vs Siloz-1024): execution time",
		core.ModeSiloz, core.ModeSiloz, 1024, 512, singles, suites, execTime)
	if err != nil {
		return out, err
	}
	out.Time2048, err = comparePerf(cfg, "Figure 6 (Siloz-2048 vs Siloz-1024): execution time",
		core.ModeSiloz, core.ModeSiloz, 1024, 2048, singles, suites, execTime)
	if err != nil {
		return out, err
	}
	out.Tput512, err = comparePerf(cfg, "Figure 7 (Siloz-512 vs Siloz-1024): throughput",
		core.ModeSiloz, core.ModeSiloz, 1024, 512, fig5Workloads(), nil, throughput)
	if err != nil {
		return out, err
	}
	out.Tput2048, err = comparePerf(cfg, "Figure 7 (Siloz-2048 vs Siloz-1024): throughput",
		core.ModeSiloz, core.ModeSiloz, 1024, 2048, fig5Workloads(), nil, throughput)
	return out, err
}
