package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/stats"
	"repro/internal/workload"
)

// fig4Workloads are the execution-time workloads of Fig. 4: redis+YCSB A-F,
// terasort, and the SPEC/PARSEC suites (reported as single aggregate bars).
func fig4Workloads() ([]workload.Workload, []suite) {
	singles := append(workload.AllYCSB(), workload.Terasort{})
	suites := []suite{
		{name: "spec", members: workload.SPECSuite()},
		{name: "parsec", members: workload.PARSECSuite()},
	}
	return singles, suites
}

// suite aggregates several workloads into one reported bar (geomean), the
// way the paper reports SPEC and PARSEC.
type suite struct {
	name    string
	members []workload.Workload
}

// fig5Workloads are the throughput workloads of Fig. 5.
func fig5Workloads() []workload.Workload {
	return append([]workload.Workload{workload.Memcached{}, workload.Sysbench{}}, workload.AllMLC()...)
}

// comparePerf measures every workload under two hypervisor variants and
// normalizes variant metrics to the reference. Workloads are visited in
// order; within each, reps fan out onto the pool (suite reps fan out as
// whole units, each running its members serially), so bar order — and
// every bar's value — is independent of scheduling.
func comparePerf(ctx context.Context, pool *Pool, cfg PerfConfig, title string,
	refMode, varMode core.Mode, refRows, varRows int,
	singles []workload.Workload, suites []suite,
	metric func(memctrl.Result) float64) (Figure, error) {

	refCfg, varCfg := cfg, cfg
	refCfg.JitterSalt = 1 + 3*int64(refMode) + 17*int64(refRows)
	varCfg.JitterSalt = 2 + 5*int64(varMode) + 23*int64(varRows)

	refH, refVM, err := bootWithVM(cfg, refMode, refRows)
	if err != nil {
		return Figure{}, fmt.Errorf("booting reference: %w", err)
	}
	varH, varVM, err := bootWithVM(cfg, varMode, varRows)
	if err != nil {
		return Figure{}, fmt.Errorf("booting variant: %w", err)
	}
	_ = refH
	_ = varH

	fig := Figure{Title: title}
	addBar := func(name string, ref, vr stats.Sample) {
		n := stats.Normalize(vr, ref)
		n.Name = name
		fig.Bars = append(fig.Bars, n)
	}
	for _, w := range singles {
		if err := ctx.Err(); err != nil {
			return fig, err
		}
		ref, err := measure(ctx, pool, refCfg, refVM, w, metric)
		if err != nil {
			return fig, err
		}
		vr, err := measure(ctx, pool, varCfg, varVM, w, metric)
		if err != nil {
			return fig, err
		}
		addBar(w.Name(), ref, vr)
	}
	for _, s := range suites {
		// Geomean the members into one synthetic value per rep. Each rep
		// is one pool task: it runs every member once, serially, under
		// rep-derived seeds, and writes slot rep of both samples.
		refParts := make([]stats.Sample, cfg.Reps)
		varParts := make([]stats.Sample, cfg.Reps)
		err := pool.Map(ctx, cfg.Reps, func(rep int) error {
			repRef, repVar := refCfg, varCfg
			repRef.Reps, repVar.Reps = 1, 1
			repRef.Seed = repSeed(cfg.Seed, rep)
			repVar.Seed = repRef.Seed
			var refVals, varVals []float64
			for _, w := range s.members {
				ref, err := measure(ctx, nil, repRef, refVM, w, metric)
				if err != nil {
					return err
				}
				vr, err := measure(ctx, nil, repVar, varVM, w, metric)
				if err != nil {
					return err
				}
				refVals = append(refVals, ref.Values[0])
				varVals = append(varVals, vr.Values[0])
			}
			refParts[rep] = stats.Sample{Values: []float64{stats.GeoMean(refVals)}}
			varParts[rep] = stats.Sample{Values: []float64{stats.GeoMean(varVals)}}
			return nil
		})
		if err != nil {
			return fig, err
		}
		addBar(s.name, stats.Concat(s.name, refParts...), stats.Concat(s.name, varParts...))
	}
	fig.GeomeanPct = geomeanPct(fig.Bars)
	return fig, nil
}

// Fig4ExecutionTime reproduces Figure 4: baseline-normalized execution time
// for Siloz across redis+YCSB, terasort, SPEC and PARSEC.
func Fig4ExecutionTime(ctx context.Context, pool *Pool, cfg PerfConfig) (Figure, error) {
	singles, suites := fig4Workloads()
	return comparePerf(ctx, pool, cfg, "Figure 4: baseline-normalized execution time overhead (Siloz)",
		core.ModeBaseline, core.ModeSiloz, 0, 0, singles, suites, execTime)
}

// Fig5Throughput reproduces Figure 5: baseline-normalized throughput
// overhead for Siloz across memcached, mySQL and Intel MLC modes.
func Fig5Throughput(ctx context.Context, pool *Pool, cfg PerfConfig) (Figure, error) {
	return comparePerf(ctx, pool, cfg, "Figure 5: baseline-normalized throughput overhead (Siloz)",
		core.ModeBaseline, core.ModeSiloz, 0, 0, fig5Workloads(), nil, throughput)
}

// SizeSensitivity reproduces Figures 6 and 7: Siloz-512 and Siloz-2048
// normalized to Siloz-1024 (§7.4), for both metrics.
type SizeSensitivity struct {
	Time512, Time2048 Figure
	Tput512, Tput2048 Figure
}

// Fig6And7SizeSensitivity runs the §7.4 sweep.
func Fig6And7SizeSensitivity(ctx context.Context, pool *Pool, cfg PerfConfig) (SizeSensitivity, error) {
	var out SizeSensitivity
	singles, suites := fig4Workloads()
	var err error
	out.Time512, err = comparePerf(ctx, pool, cfg, "Figure 6 (Siloz-512 vs Siloz-1024): execution time",
		core.ModeSiloz, core.ModeSiloz, 1024, 512, singles, suites, execTime)
	if err != nil {
		return out, err
	}
	out.Time2048, err = comparePerf(ctx, pool, cfg, "Figure 6 (Siloz-2048 vs Siloz-1024): execution time",
		core.ModeSiloz, core.ModeSiloz, 1024, 2048, singles, suites, execTime)
	if err != nil {
		return out, err
	}
	out.Tput512, err = comparePerf(ctx, pool, cfg, "Figure 7 (Siloz-512 vs Siloz-1024): throughput",
		core.ModeSiloz, core.ModeSiloz, 1024, 512, fig5Workloads(), nil, throughput)
	if err != nil {
		return out, err
	}
	out.Tput2048, err = comparePerf(ctx, pool, cfg, "Figure 7 (Siloz-2048 vs Siloz-1024): throughput",
		core.ModeSiloz, core.ModeSiloz, 1024, 2048, fig5Workloads(), nil, throughput)
	return out, err
}

// figureResult wraps a single computed figure as a structured Result.
func figureResult(name string, fig Figure) *Result {
	r := &Result{Name: name, Title: fig.Title, Series: []Series{fig.series("overhead")}}
	r.scalar("geomean_overhead_pct", fig.GeomeanPct)
	r.check("within_half_percent", fig.WithinHalfPercent(),
		fmt.Sprintf("geomean %+.2f%%, paper claims within ±0.5%%", fig.GeomeanPct))
	return r
}

// fig4Exp is the "fig4" experiment: Figure 4, execution time.
type fig4Exp struct{}

func (fig4Exp) Name() string { return "fig4" }

func (fig4Exp) Run(ctx context.Context, cfg Config) (*Result, error) {
	fig, err := Fig4ExecutionTime(ctx, cfg.Pool, cfg.Perf)
	if err != nil {
		return nil, err
	}
	return figureResult("fig4", fig), nil
}

// fig5Exp is the "fig5" experiment: Figure 5, throughput.
type fig5Exp struct{}

func (fig5Exp) Name() string { return "fig5" }

func (fig5Exp) Run(ctx context.Context, cfg Config) (*Result, error) {
	fig, err := Fig5Throughput(ctx, cfg.Pool, cfg.Perf)
	if err != nil {
		return nil, err
	}
	return figureResult("fig5", fig), nil
}

// fig67Exp is the "fig67" experiment: the §7.4 subarray-size sweep.
type fig67Exp struct{}

func (fig67Exp) Name() string { return "fig67" }

func (fig67Exp) Run(ctx context.Context, cfg Config) (*Result, error) {
	res, err := Fig6And7SizeSensitivity(ctx, cfg.Pool, cfg.Perf)
	if err != nil {
		return nil, err
	}
	r := &Result{Name: "fig67", Title: "Figures 6+7: subarray size sensitivity (§7.4)"}
	for _, f := range []struct {
		key string
		fig Figure
	}{
		{"fig6-siloz512", res.Time512},
		{"fig6-siloz2048", res.Time2048},
		{"fig7-siloz512", res.Tput512},
		{"fig7-siloz2048", res.Tput2048},
	} {
		r.Series = append(r.Series, f.fig.series(f.key))
		r.scalar(f.key+"_geomean_pct", f.fig.GeomeanPct)
		r.check(f.key+"_within_half_percent", f.fig.WithinHalfPercent(),
			fmt.Sprintf("geomean %+.2f%%", f.fig.GeomeanPct))
	}
	return r, nil
}
