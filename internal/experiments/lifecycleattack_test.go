package experiments

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/attack"
)

// TestLifecycleAttackExperiment runs the quick sweep and pins its contract:
// all four campaign classes produce a row, every containment check passes,
// every campaign is non-vacuous (bursts landed, attacker flips happened),
// and the JSON render is byte-identical at parallelism 1 and 8 — the
// interleaving is hook-driven per cell, so the pool only fans across cells.
func TestLifecycleAttackExperiment(t *testing.T) {
	cfg := Config{Lifecycle: QuickLifecycleAttackConfig()}
	r, err := (lifecycleAttackExp{}).Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(r.Rows), len(attack.Campaigns()); got != want {
		t.Fatalf("quick run produced %d rows, want %d (one per campaign)", got, want)
	}
	for _, c := range r.Checks {
		if !c.Pass {
			t.Errorf("check %s failed: %s", c.Name, c.Detail)
		}
	}
	for _, row := range r.Rows {
		// bursts (col 3) and attacker flips (col 4) must be non-zero or the
		// containment claim is vacuous for that campaign.
		if row.Cells[3].(int) == 0 || row.Cells[4].(int) == 0 {
			t.Errorf("campaign %s vacuous: %v", row.Label, row.Cells)
		}
	}

	j1, err := RenderJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(8)
	r2, err := (lifecycleAttackExp{}).Run(context.Background(),
		Config{Lifecycle: QuickLifecycleAttackConfig(), Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := RenderJSON(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("lifecycle-attack is not deterministic across parallelism widths")
	}
}
