package experiments

import (
	"context"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/geometry"
)

// This file makes the §3 guard-row comparison executable. A ZebRAM-style
// scheme reserves guard rows between rows of different isolation domains:
// at 1 guard per normal row it costs 50% of the protected region, and —
// because modern DIMMs disturb rows two away (Half-Double) — it *still*
// leaks; safety requires 4 guards per normal row (80%). Siloz's subarray
// groups get the same containment from the silicon itself at ~0% cost.

// ZebRAMRow is one configuration of the comparison.
type ZebRAMRow struct {
	// Scheme names the configuration.
	Scheme string
	// OverheadPct is the DRAM share reserved as guards.
	OverheadPct float64
	// CrossDomainFlips counts flips landing in the other domain's rows.
	CrossDomainFlips int
	// Safe reports whether isolation held.
	Safe bool
}

// zebramExp is the "zebram" experiment: guard rows vs subarray groups.
type zebramExp struct{}

func (zebramExp) Name() string { return "zebram" }

func (zebramExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	var rows []ZebRAMRow
	err := cfg.Pool.Run(ctx, func() error {
		var err error
		rows, err = ZebRAMComparison()
		return err
	})
	if err != nil {
		return nil, err
	}
	r := &Result{
		Name:    "zebram",
		Title:   "Guard-row schemes vs subarray groups under a blast-radius-2 DIMM (§3)",
		Columns: []string{"overhead", "cross flips", "safe"},
		Units:   []string{"%", "", ""},
	}
	oneGuardLeaks, silozSafe := false, false
	for _, row := range rows {
		r.Rows = append(r.Rows, Row{Label: row.Scheme,
			Cells: []any{row.OverheadPct, row.CrossDomainFlips, row.Safe}})
		switch row.Scheme {
		case "ZebRAM, 1 guard/row (50%)":
			oneGuardLeaks = !row.Safe
		case "Siloz subarray groups (~0%)":
			silozSafe = row.Safe
			r.scalar("siloz_cross_flips", float64(row.CrossDomainFlips))
			r.scalar("siloz_overhead_pct", row.OverheadPct)
		}
	}
	r.check("one_guard_leaks_half_double", oneGuardLeaks,
		"1 guard/row still leaks under blast radius 2 (Half-Double)")
	r.check("siloz_contains", silozSafe, "subarray groups contain all flips at ~0% cost")
	return r, nil
}

// zebramProbe lays two domains' rows into one bank under a guard-row
// scheme with the given stride (domain rows at multiples of stride, guards
// between; stride 1 = adjacent domains, no guards), hammers every row
// domain A owns, and counts flips landing in domain B's rows.
func zebramProbe(stride int) (int, error) {
	g := geometry.Geometry{
		Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
		BanksPerRank: 8, RowsPerBank: 2048, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
	prof := dram.ProfileF() // blast radius 2
	prof.VulnerableRowFraction = 1
	prof.Transforms = addr.TransformConfig{}
	mod, err := dram.NewModule(g, prof, 0, 0, nil)
	if err != nil {
		return 0, err
	}
	bank := geometry.BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 0}

	// Alternate domain ownership of the usable rows: A, B, A, B...
	owner := map[int]byte{}
	usable := 0
	for r := 0; r < g.RowsPerSubarray; r += stride {
		if usable%2 == 0 {
			owner[r] = 'A'
		} else {
			owner[r] = 'B'
		}
		usable++
	}
	// Domain A hammers every row it owns, hard. Rows are visited in
	// ascending order (never map order) so the flip set is reproducible.
	for r := 0; r < g.RowsPerSubarray; r += stride {
		if owner[r] != 'A' {
			continue
		}
		if err := mod.ActivateRow(bank, r, int(prof.HammerThreshold)*5, 0); err != nil {
			return 0, err
		}
		mod.Refresh() // fresh activation budget per aggressor
	}
	cross := 0
	for _, f := range mod.Flips() {
		if owner[f.MediaRow] == 'B' {
			cross++
		}
	}
	return cross, nil
}

// ZebRAMComparison runs the guard-row schemes and the Siloz equivalent.
func ZebRAMComparison() ([]ZebRAMRow, error) {
	var out []ZebRAMRow
	cases := []struct {
		scheme   string
		stride   int
		overhead float64
	}{
		{"no guards (baseline placement)", 1, 0},
		{"ZebRAM, 1 guard/row (50%)", 2, 50},
		{"ZebRAM, 2 guards/row (66%)", 3, 100.0 * 2 / 3},
		{"ZebRAM, 4 guards/row (80%)", 5, 80},
	}
	for _, c := range cases {
		cross, err := zebramProbe(c.stride)
		if err != nil {
			return nil, err
		}
		out = append(out, ZebRAMRow{
			Scheme:           c.scheme,
			OverheadPct:      c.overhead,
			CrossDomainFlips: cross,
			Safe:             cross == 0,
		})
	}
	// Siloz: the two domains are separate subarray groups; hammering all
	// of A's rows cannot reach B's subarray at any cost.
	cross, err := silozProbe()
	if err != nil {
		return nil, err
	}
	out = append(out, ZebRAMRow{
		Scheme:           "Siloz subarray groups (~0%)",
		OverheadPct:      0.024, // the EPT block, §5.4
		CrossDomainFlips: cross,
		Safe:             cross == 0,
	})
	return out, nil
}

// silozProbe gives domain A one whole subarray and B the next, A hammering
// everything it owns including the boundary rows.
func silozProbe() (int, error) {
	g := geometry.Geometry{
		Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
		BanksPerRank: 8, RowsPerBank: 2048, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
	prof := dram.ProfileF()
	prof.VulnerableRowFraction = 1
	prof.Transforms = addr.TransformConfig{}
	mod, err := dram.NewModule(g, prof, 0, 0, nil)
	if err != nil {
		return 0, err
	}
	bank := geometry.BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 0}
	// A = subarray 0 rows, B = subarray 1 rows. Hammer A's boundary-most
	// rows plus a spread.
	for _, r := range []int{509, 510, 511, 100, 200, 300} {
		if err := mod.ActivateRow(bank, r, int(prof.HammerThreshold)*5, 0); err != nil {
			return 0, err
		}
		mod.Refresh()
	}
	cross := 0
	for _, f := range mod.Flips() {
		if f.MediaRow >= 512 && f.MediaRow < 1024 {
			cross++
		}
	}
	return cross, nil
}
