package experiments

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/subarray"
)

// SecurityConfig parameterizes the §7.1 experiments.
type SecurityConfig struct {
	// Geometry of the simulated server; zero value = the paper's server.
	Geometry geometry.Geometry
	// Patterns per DIMM for the fuzzing campaign.
	Patterns int
	// Windows hammered per pattern ("leaving the system running", §7.1).
	Windows int
	// Seed drives the fuzzer.
	Seed int64
}

// DefaultSecurityConfig sizes the campaign like one unit of the paper's
// 24-hour run.
func DefaultSecurityConfig() SecurityConfig {
	return SecurityConfig{Geometry: geometry.Default(), Patterns: 40, Windows: 2, Seed: 7}
}

// DIMMContainment is one row of Table 3.
type DIMMContainment struct {
	// DIMM names the module (A-F).
	DIMM string
	// FlipsInside counts bit flips inside the fuzzer's subarray group.
	FlipsInside int
	// FlipsOutside counts bit flips outside it (must be 0 under Siloz).
	FlipsOutside int
	// AttackerObserved counts corruptions the attacker itself saw.
	AttackerObserved int
	// RanksWithFlips and BanksWithFlips count distinct ranks/banks that
	// flipped (§7.1 reports flips "across ranks and banks").
	RanksWithFlips, BanksWithFlips int
}

// Table3Result reproduces Table 3: per-DIMM bit-flip containment.
type Table3Result struct {
	Rows []DIMMContainment
}

// Contained reports whether no flip escaped on any DIMM.
func (t Table3Result) Contained() bool {
	for _, r := range t.Rows {
		if r.FlipsOutside != 0 {
			return false
		}
	}
	return true
}

// table3ShardsPerDIMM is how many bank campaigns Table 3 runs per DIMM
// profile: banks on both ranks of the DIMM under test (§7.1 observes flips
// "across ranks and banks in the DIMMs").
const table3ShardsPerDIMM = 3

// table3BankIndex returns the socket-flat bank index shard bi attacks on
// the DIMM under test.
func table3BankIndex(g geometry.Geometry, dimmIdx, bi int) int {
	dimm := dimmIdx % g.DIMMsPerSocket
	switch bi {
	case 0:
		return dimm * g.BanksPerDIMM() // rank 0, bank 0
	case 1:
		return dimm*g.BanksPerDIMM() + g.BanksPerRank // rank 1, bank 0
	default:
		return dimm*g.BanksPerDIMM() + g.BanksPerRank/2 // rank 0, mid bank
	}
}

// Table3Containment runs the §7.1 hammering-containment experiment: on each
// of the six DIMM profiles, a Blacksmith campaign is pinned to one Siloz
// subarray group; every resulting flip is classified as inside or outside
// the group.
//
// The campaign is sharded per (DIMM, bank) — DIMMs × table3ShardsPerDIMM
// independent units on one pool.Map — rather than per DIMM, so a wide pool
// keeps every worker busy instead of serializing the three bank campaigns
// inside each DIMM. Each shard boots its own hypervisor; because simulated
// disturbance is per-bank and the shards attack distinct banks, the flips a
// shard produces are identical to those the same campaign produces on a
// shared image, and the fixed-order merge below reassembles per-DIMM rows
// byte-identically at any pool width (seeds are cfg.Seed + dimmIdx*17 + bi,
// unchanged from the per-DIMM formulation).
func Table3Containment(ctx context.Context, pool *Pool, cfg SecurityConfig) (Table3Result, error) {
	profiles := dram.EvaluationProfiles()
	g := cfg.Geometry

	shards := make([]attack.BankShard, 0, len(profiles)*table3ShardsPerDIMM)
	for dimmIdx, prof := range profiles {
		for bi := 0; bi < table3ShardsPerDIMM; bi++ {
			shards = append(shards, attack.BankShard{
				Tag:              prof.Name,
				BankIndex:        table3BankIndex(g, dimmIdx, bi),
				Seed:             cfg.Seed + int64(dimmIdx)*17 + int64(bi),
				MaxActsPerWindow: prof.MaxActsPerWindow * 9 / 10,
			})
		}
	}

	// Per-shard machine state, filled by newTarget and read back for flip
	// classification after the campaigns finish.
	type shardMachine struct {
		mem *dram.Memory
		grp *subarray.Group
	}
	machines := make([]shardMachine, len(shards))

	newTarget := func(i int, s attack.BankShard) (attack.Target, error) {
		dimmIdx := i / table3ShardsPerDIMM
		h, err := core.Boot(core.Config{
			Geometry:      g,
			Profiles:      []dram.Profile{profiles[dimmIdx]},
			EPTProtection: ept.GuardRows,
		}, core.ModeSiloz)
		if err != nil {
			return nil, err
		}
		// Pin the fuzzer to one guest subarray group, targeting a bank
		// on the DIMM under test.
		grp := h.Layout().Group(0, 1+dimmIdx%(h.Layout().GroupsPerSocket()-1))
		var ranges []attack.PhysRange
		for _, r := range grp.Ranges {
			ranges = append(ranges, attack.PhysRange{Start: r.Start, End: r.End})
		}
		machines[i] = shardMachine{mem: h.Memory(), grp: grp}
		return &attack.PhysTarget{
			Mem:       h.Memory(),
			Ranges:    ranges,
			BankIndex: s.BankIndex,
		}, nil
	}

	campaign := attack.FuzzerConfig{
		Patterns:          cfg.Patterns,
		WindowsPerPattern: cfg.Windows,
		FillPattern:       0xAA,
	}
	reports, err := attack.RunSharded(ctx, campaign, shards, newTarget, pool.Map)
	if err != nil {
		return Table3Result{}, err
	}

	// Fixed-order merge: shard order is (dimm, bank) lexicographic, so the
	// per-DIMM rows come out identical regardless of scheduling.
	rows := make([]DIMMContainment, len(profiles))
	for dimmIdx, prof := range profiles {
		row := DIMMContainment{DIMM: prof.Name}
		ranksHit := map[int]bool{}
		banksHit := map[geometry.BankID]bool{}
		for bi := 0; bi < table3ShardsPerDIMM; bi++ {
			i := dimmIdx*table3ShardsPerDIMM + bi
			row.AttackerObserved += len(reports[i].Report.Corruptions)
			m := machines[i]
			for _, f := range m.mem.Flips() {
				pa, err := m.mem.FlipPhys(f)
				if err != nil {
					return Table3Result{}, err
				}
				if m.grp.Contains(pa) {
					row.FlipsInside++
					ranksHit[f.Bank.Rank] = true
					banksHit[f.Bank] = true
				} else {
					row.FlipsOutside++
				}
			}
		}
		row.RanksWithFlips = len(ranksHit)
		row.BanksWithFlips = len(banksHit)
		rows[dimmIdx] = row
	}
	return Table3Result{Rows: rows}, nil
}

// table3Exp is the "table3" experiment: per-DIMM bit-flip containment.
type table3Exp struct{}

func (table3Exp) Name() string { return "table3" }

func (table3Exp) Run(ctx context.Context, cfg Config) (*Result, error) {
	res, err := Table3Containment(ctx, cfg.Pool, cfg.Security)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Name:    "table3",
		Title:   "Table 3: observed bit flips vs. the hammering domain's subarray group (§7.1)",
		Columns: []string{"inside group", "outside group", "attacker observed", "ranks w/ flips", "banks w/ flips"},
	}
	var inside, outside int
	for _, row := range res.Rows {
		r.Rows = append(r.Rows, Row{Label: row.DIMM, Cells: []any{
			row.FlipsInside, row.FlipsOutside, row.AttackerObserved,
			row.RanksWithFlips, row.BanksWithFlips,
		}})
		inside += row.FlipsInside
		outside += row.FlipsOutside
	}
	r.scalar("flips_inside", float64(inside))
	r.scalar("flips_outside", float64(outside))
	r.check("contained", res.Contained(), "no flip escaped any subarray group")
	return r, nil
}

// EPTProtectionResult reproduces the §7.1 EPT experiment: hammering groups
// of 32 consecutive rows protected per Siloz's mitigation vs. unprotected
// row groups in the same subarray group.
type EPTProtectionResult struct {
	// ProtectedFlips counts flips landing in the protected row (must be 0).
	ProtectedFlips int
	// UnprotectedFlips counts flips in the unprotected control rows.
	UnprotectedFlips int
	// TranslationsIntact reports whether the VM's EPT mappings survived.
	TranslationsIntact bool
}

// EPTProtection runs the experiment on the default evaluation server.
func EPTProtection(cfg SecurityConfig) (EPTProtectionResult, error) {
	var out EPTProtectionResult
	prof := dram.ProfileD() // most susceptible part
	prof.VulnerableRowFraction = 1
	h, err := core.Boot(core.Config{
		Geometry:      cfg.Geometry,
		Profiles:      []dram.Profile{prof},
		EPTProtection: ept.GuardRows,
	}, core.ModeSiloz)
	if err != nil {
		return out, err
	}
	vm, err := h.CreateVM(core.Process{KVMPrivileged: true}, core.VMSpec{
		Name: "probe", Socket: 0,
		MemoryBytes: uint64(h.Layout().GroupBytes()),
	})
	if err != nil {
		return out, err
	}
	before := make(map[uint64]uint64)
	for gpa := uint64(0); gpa < vm.Spec().MemoryBytes; gpa += geometry.PageSize2M {
		hpa, err := vm.TranslateUncached(gpa)
		if err != nil {
			return out, err
		}
		before[gpa] = hpa
	}

	mem := h.Memory()

	eptNode, err := h.EPTNode(0)
	if err != nil {
		return out, err
	}
	ma, err := mem.Mapper().Decode(eptNode.Ranges[0].Start)
	if err != nil {
		return out, err
	}
	// Protected block: hammer the closest allocatable rows around the
	// 32-row EPT block (rows just above it).
	for _, row := range []int{core.EPTBlockRowGroups, core.EPTBlockRowGroups + 1} {
		pa, err := mem.Mapper().Encode(geometry.MediaAddr{Bank: ma.Bank, Row: row, Col: 0})
		if err != nil {
			return out, err
		}
		if err := mem.ActivatePhys(pa, int(prof.HammerThreshold)*4, 0); err != nil {
			return out, err
		}
	}
	mem.Refresh()
	// Unprotected control rows in the same subarray group: hammer row
	// 100 (host group interior).
	ctrlPA, err := mem.Mapper().Encode(geometry.MediaAddr{Bank: ma.Bank, Row: 100, Col: 0})
	if err != nil {
		return out, err
	}
	if err := mem.ActivatePhys(ctrlPA, int(prof.HammerThreshold)*4, 0); err != nil {
		return out, err
	}
	mem.Refresh()

	for _, f := range mem.Flips() {
		if f.MediaRow < core.EPTBlockRowGroups {
			if f.MediaRow == core.EPTRowGroupOffset {
				out.ProtectedFlips++
			}
			// Flips in offlined guard rows are harmless by design.
			continue
		}
		out.UnprotectedFlips++
	}
	out.TranslationsIntact = true
	for gpa, want := range before {
		hpa, err := vm.TranslateUncached(gpa)
		if err != nil || hpa != want {
			out.TranslationsIntact = false
			break
		}
	}
	return out, nil
}

// eptExp is the "ept" experiment: EPT bit-flip prevention.
type eptExp struct{}

func (eptExp) Name() string { return "ept" }

func (eptExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	var res EPTProtectionResult
	err := cfg.Pool.Run(ctx, func() error {
		var err error
		res, err = EPTProtection(cfg.Security)
		return err
	})
	if err != nil {
		return nil, err
	}
	r := &Result{Name: "ept", Title: "EPT bit-flip prevention (§7.1)"}
	r.scalar("protected_flips", float64(res.ProtectedFlips))
	r.scalar("unprotected_flips", float64(res.UnprotectedFlips))
	r.check("protected_rows_flip_free", res.ProtectedFlips == 0,
		fmt.Sprintf("%d flips in protected 32-row blocks", res.ProtectedFlips))
	r.check("translations_intact", res.TranslationsIntact, "EPT mappings survived hammering")
	r.check("control_rows_flipped", res.UnprotectedFlips > 0,
		fmt.Sprintf("%d flips in unprotected control rows (experiment non-vacuous)", res.UnprotectedFlips))
	return r, nil
}
