package experiments

// The package-level registry lists every experiment in the canonical order
// of the paper's evaluation — the order `siloz-bench -exp all` runs and
// renders them. cmd/siloz-bench dispatches from this table; adding an
// experiment means implementing Experiment and appending one line here.
var registry = []Experiment{
	table3Exp{},
	eptExp{},
	fig4Exp{},
	fig5Exp{},
	fig67Exp{},
	blpExp{},
	overheadExp{},
	softRefreshExp{},
	remapsExp{},
	gbPagesExp{},
	eccExp{},
	fragmentationExp{},
	migrationExp{},
	ballooningExp{},
	hotplugExp{},
	ddr5Exp{},
	dramaExp{},
	actRatesExp{},
	zebramExp{},
	eptRelocExp{},
	fleetChurnExp{},
	lifecycleAttackExp{},
	mitigationMatrixExp{},
	servingSLOExp{},
}

// All returns every registered experiment in canonical order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Names returns the registered experiment names in canonical order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name()
	}
	return out
}

// Get looks an experiment up by name.
func Get(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}
