package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/workload"
)

// ActRateRow reports one workload's peak per-row activation rate within a
// 64 ms refresh window — the quantity Rowhammer thresholds are defined over.
// The paper's motivation (§1, citing [98]) is that both malicious and
// commodity access streams can exceed modern thresholds, so thresholds
// cannot be outrun: isolation is required.
type ActRateRow struct {
	// Workload names the access stream.
	Workload string
	// PeakACTs is the maximum activations one row received in a window.
	PeakACTs int
	// Exceeds lists the evaluation DIMMs whose thresholds the peak beats.
	Exceeds []string
}

// RenderActRates formats the study against the DIMM thresholds.
func RenderActRates(rows []ActRateRow) string {
	var b strings.Builder
	b.WriteString("Peak per-row activations per 64 ms window (§1, §2.5)\n")
	var th []string
	for _, p := range dram.EvaluationProfiles() {
		th = append(th, fmt.Sprintf("%s=%0.f", p.Name, p.HammerThreshold))
	}
	fmt.Fprintf(&b, "thresholds: %s\n", strings.Join(th, " "))
	fmt.Fprintf(&b, "%-22s %12s %s\n", "workload", "peak ACTs", "exceeds DIMMs")
	for _, r := range rows {
		ex := strings.Join(r.Exceeds, ",")
		if ex == "" {
			ex = "-"
		}
		fmt.Fprintf(&b, "%-22s %12d %s\n", r.Workload, r.PeakACTs, ex)
	}
	return b.String()
}

// ActivationRates measures the peak per-row activation rate of commodity
// workloads and of a dedicated hammering stream, on the evaluation server.
func ActivationRates(cfg PerfConfig) ([]ActRateRow, error) {
	h, vm, err := bootWithVM(cfg, core.ModeSiloz, 0)
	if err != nil {
		return nil, err
	}
	exceeds := func(peak int) []string {
		var out []string
		for _, p := range dram.EvaluationProfiles() {
			if float64(peak) >= p.HammerThreshold {
				out = append(out, p.Name)
			}
		}
		return out
	}
	run := func(w workload.Workload, ops int) (ActRateRow, error) {
		ctrl, err := memctrl.New(memctrl.Config{
			Mapper:           h.Memory().Mapper(),
			Timing:           memctrl.DDR4_2933(),
			MLPWindow:        cfg.MLPWindow,
			TrackActivations: true,
		})
		if err != nil {
			return ActRateRow{}, err
		}
		res, err := workload.RunOnVM(vm, ctrl, nil, w, ops, cfg.Seed)
		if err != nil {
			return ActRateRow{}, err
		}
		return ActRateRow{Workload: w.Name(), PeakACTs: res.PeakRowACTs, Exceeds: exceeds(res.PeakRowACTs)}, nil
	}

	var rows []ActRateRow
	commodity := []workload.Workload{
		workload.YCSB{Letter: 'a'},
		workload.Memcached{},
		workload.MLC{Mode: "stream"},
		workload.Terasort{},
	}
	for _, w := range commodity {
		r, err := run(w, cfg.Ops)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	// A deliberate hammering stream: alternate two rows of one bank as
	// fast as the DRAM allows (no cache, single victim pair).
	r, err := run(hammerStream{}, cfg.Ops)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	return rows, nil
}

// hammerStream is the malicious reference stream: a two-row bank ping-pong.
type hammerStream struct{}

// Name implements workload.Workload.
func (hammerStream) Name() string { return "hammer-pair" }

// BypassesCache marks the stream as cache-defeating (as real attacks are).
func (hammerStream) BypassesCache() bool { return true }

// Generate implements workload.Workload.
func (hammerStream) Generate(region uint64, ops int, _ int64, emit func(workload.Access) bool) {
	// Two addresses one row apart in the same bank: offset 0 and one
	// full row group ahead (dependent on geometry; 1.5 MiB on the
	// evaluation server — recomputed by the emitter's decode, but the
	// stride only needs to revisit the same bank at a different row).
	const rowStride = 192 * 64 * 128 // banks * line * linesPerRow
	for i := 0; i < ops; i++ {
		off := uint64(0)
		if i%2 == 1 {
			off = rowStride
		}
		if !emit(workload.Access{Offset: off % region}) {
			return
		}
	}
}
