package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/workload"
)

// ActRateRow reports one workload's peak per-row activation rate within a
// 64 ms refresh window — the quantity Rowhammer thresholds are defined over.
// The paper's motivation (§1, citing [98]) is that both malicious and
// commodity access streams can exceed modern thresholds, so thresholds
// cannot be outrun: isolation is required.
type ActRateRow struct {
	// Workload names the access stream.
	Workload string
	// PeakACTs is the maximum activations one row received in a window.
	PeakACTs int
	// Exceeds lists the evaluation DIMMs whose thresholds the peak beats.
	Exceeds []string
}

// actRatesExp is the "actrates" experiment: peak per-row activation rates.
type actRatesExp struct{}

func (actRatesExp) Name() string { return "actrates" }

func (actRatesExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	// The hammer stream needs enough ops to reach real thresholds within
	// one refresh window; bump small CLI/quick op counts.
	pcfg := cfg.Perf
	if pcfg.Ops < 250_000 {
		pcfg.Ops = 250_000
	}
	var rows []ActRateRow
	err := cfg.Pool.Run(ctx, func() error {
		var err error
		rows, err = ActivationRates(ctx, pcfg)
		return err
	})
	if err != nil {
		return nil, err
	}
	r := &Result{
		Name:    "actrates",
		Title:   "Peak per-row activations per 64 ms window (§1, §2.5)",
		Columns: []string{"peak ACTs", "exceeds DIMMs"},
	}
	var hammerPeak float64
	for _, row := range rows {
		ex := strings.Join(row.Exceeds, ",")
		if ex == "" {
			ex = "-"
		}
		r.Rows = append(r.Rows, Row{Label: row.Workload, Cells: []any{row.PeakACTs, ex}})
		if row.Workload == "hammer-pair" {
			hammerPeak = float64(row.PeakACTs)
			r.scalar("hammer_peak_acts", hammerPeak)
			r.check("hammer_exceeds_all_dimms",
				len(row.Exceeds) == len(dram.EvaluationProfiles()),
				fmt.Sprintf("hammer-pair peaks at %d ACTs/window", row.PeakACTs))
		}
	}
	var th []string
	for _, p := range dram.EvaluationProfiles() {
		th = append(th, fmt.Sprintf("%s=%0.f", p.Name, p.HammerThreshold))
	}
	r.Notes = append(r.Notes, "thresholds: "+strings.Join(th, " "))
	return r, nil
}

// ActivationRates measures the peak per-row activation rate of commodity
// workloads and of a dedicated hammering stream, on the evaluation server.
func ActivationRates(ctx context.Context, cfg PerfConfig) ([]ActRateRow, error) {
	h, vm, err := bootWithVM(cfg, core.ModeSiloz, 0)
	if err != nil {
		return nil, err
	}
	exceeds := func(peak int) []string {
		var out []string
		for _, p := range dram.EvaluationProfiles() {
			if float64(peak) >= p.HammerThreshold {
				out = append(out, p.Name)
			}
		}
		return out
	}
	run := func(w workload.Workload, ops int) (ActRateRow, error) {
		ctrl, err := memctrl.New(memctrl.Config{
			Mapper:           h.Memory().Mapper(),
			Timing:           memctrl.DDR4_2933(),
			MLPWindow:        cfg.MLPWindow,
			TrackActivations: true,
		})
		if err != nil {
			return ActRateRow{}, err
		}
		res, err := workload.RunOnVM(vm, ctrl, nil, w, ops, cfg.Seed)
		if err != nil {
			return ActRateRow{}, err
		}
		return ActRateRow{Workload: w.Name(), PeakACTs: res.PeakRowACTs, Exceeds: exceeds(res.PeakRowACTs)}, nil
	}

	var rows []ActRateRow
	commodity := []workload.Workload{
		workload.YCSB{Letter: 'a'},
		workload.Memcached{},
		workload.MLC{Mode: "stream"},
		workload.Terasort{},
	}
	for _, w := range commodity {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := run(w, cfg.Ops)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	// A deliberate hammering stream: alternate two rows of one bank as
	// fast as the DRAM allows (no cache, single victim pair).
	r, err := run(hammerStream{}, cfg.Ops)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	return rows, nil
}

// hammerStream is the malicious reference stream: a two-row bank ping-pong.
type hammerStream struct{}

// Name implements workload.Workload.
func (hammerStream) Name() string { return "hammer-pair" }

// BypassesCache marks the stream as cache-defeating (as real attacks are).
func (hammerStream) BypassesCache() bool { return true }

// Generate implements workload.Workload.
func (hammerStream) Generate(region uint64, ops int, _ int64, emit func(workload.Access) bool) {
	// Two addresses one row apart in the same bank: offset 0 and one
	// full row group ahead (dependent on geometry; 1.5 MiB on the
	// evaluation server — recomputed by the emitter's decode, but the
	// stride only needs to revisit the same bank at a different row).
	const rowStride = 192 * 64 * 128 // banks * line * linesPerRow
	for i := 0; i < ops; i++ {
		off := uint64(0)
		if i%2 == 1 {
			off = rowStride
		}
		if !emit(workload.Access{Offset: off % region}) {
			return
		}
	}
}
