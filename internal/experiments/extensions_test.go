package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/geometry"
)

func TestECCStudy(t *testing.T) {
	res, err := ECCStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.WordsCorrected == 0 {
		t.Error("no corrected words; study vacuous")
	}
	if res.WordsUncorrectable == 0 {
		t.Error("§2.5: dense flips should produce uncorrectable words (machine checks)")
	}
	if !res.Leak {
		t.Error("§3: correction-event counts should depend on stored data (side channel)")
	}
	if res.CorrectionEventsA == res.CorrectionEventsB {
		t.Error("leak flag inconsistent with counts")
	}
	r, err := (eccExp{}).Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("ecc checks failed: %+v", r.Checks)
	}
	if !strings.Contains(RenderText(r), "correction_side_channel") {
		t.Error("render malformed")
	}
}

func TestFragmentationStudy(t *testing.T) {
	rows, err := FragmentationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 sizes x SNC-1/2)", len(rows))
	}
	byConfig := map[string]FragmentationRow{}
	for _, r := range rows {
		byConfig[r.Config] = r
	}
	snc1 := byConfig["SNC-1, 1024-row subarrays"]
	snc2 := byConfig["SNC-2, 1024-row subarrays"]
	// §8.1: SNC halves the group size and reduces waste.
	if snc2.GroupGiB*2 != snc1.GroupGiB {
		t.Errorf("SNC-2 group %.2f GiB, want half of %.2f", snc2.GroupGiB, snc1.GroupGiB)
	}
	if snc2.WastePct >= snc1.WastePct {
		t.Errorf("SNC-2 waste %.1f%% not below SNC-1 %.1f%%", snc2.WastePct, snc1.WastePct)
	}
	// Larger groups waste more.
	if byConfig["SNC-1, 2048-row subarrays"].WastePct <= byConfig["SNC-1, 512-row subarrays"].WastePct {
		t.Error("waste should grow with group size")
	}
	r, err := (fragmentationExp{}).Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderText(r), "SNC-2") {
		t.Error("render malformed")
	}
}

func TestDDR5Comparison(t *testing.T) {
	rows, err := DDR5Comparison()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		pow2 := r.SubarrayRows&(r.SubarrayRows-1) == 0
		if pow2 {
			if r.DDR4Artifical || r.DDR4Reserved != 0 {
				t.Errorf("size %d: DDR4 should need nothing for power-of-2", r.SubarrayRows)
			}
		} else {
			if !r.DDR4Artifical || r.DDR4Reserved == 0 {
				t.Errorf("size %d: DDR4 should need artificial groups + guards", r.SubarrayRows)
			}
		}
		// §8.2: DDR5 never needs artificial groups.
		if r.DDR5Artifical || r.DDR5Reserved != 0 {
			t.Errorf("size %d: DDR5 should form exact groups with no guards, got %+v", r.SubarrayRows, r)
		}
	}
	r, err := (ddr5Exp{}).Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("ddr5 checks failed: %+v", r.Checks)
	}
	if !strings.Contains(RenderText(r), "DDR5") {
		t.Error("render malformed")
	}
}

func TestSNCGeometry(t *testing.T) {
	g, err := geometry.Default().WithSNC(2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Sockets != 4 || g.DIMMsPerSocket != 3 || g.CoresPerSocket != 20 {
		t.Errorf("SNC-2 geometry wrong: %+v", g)
	}
	// Group size halves (§8.1).
	if got, want := g.SubarrayGroupBytes(), geometry.Default().SubarrayGroupBytes()/2; got != want {
		t.Errorf("SNC-2 group bytes = %d, want %d", got, want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := geometry.Default().WithSNC(0); err == nil {
		t.Error("SNC-0 accepted")
	}
	if _, err := geometry.Default().WithSNC(4); err == nil {
		t.Error("SNC-4 with 6 DIMMs/socket accepted")
	}
}

func TestDRAMAStudy(t *testing.T) {
	rows, err := DRAMAStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	shared, part := rows[0], rows[1]
	// §8.4: subarray groups share banks, so the DRAMA timing channel
	// persists under Siloz's default mapping...
	if !shared.Leaks() {
		t.Errorf("shared-bank mapping shows no timing signal (%.1f%%)", shared.SignalPct)
	}
	// ...while disjoint bank partitions close it.
	if part.Leaks() {
		t.Errorf("bank-partitioned mapping leaks (%.1f%%)", part.SignalPct)
	}
}

func TestActivationRates(t *testing.T) {
	// §1 (citing [98]): malicious AND commodity access streams can exceed
	// modern Rowhammer thresholds, so thresholds cannot be outrun —
	// isolation is required. Rates are DRAM-visible activations (the
	// coherence-induced and cache-evading traffic [98] measures).
	cfg := QuickPerfConfig()
	cfg.Ops = 250_000
	rows, err := ActivationRates(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ActRateRow{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	if got := byName["hammer-pair"]; len(got.Exceeds) != 6 {
		t.Errorf("hammer-pair exceeds only %v", got.Exceeds)
	}
	if got := byName["redis-a"]; len(got.Exceeds) == 0 {
		t.Errorf("hot-key commodity workload exceeds no thresholds (peak %d)", got.PeakACTs)
	}
	if got := byName["mlc-stream"]; len(got.Exceeds) != 0 {
		t.Errorf("sequential stream should not exceed thresholds: %+v", got)
	}
}

func TestZebRAMComparison(t *testing.T) {
	rows, err := ZebRAMComparison()
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]ZebRAMRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	// §3's executable argument:
	if byScheme["no guards (baseline placement)"].Safe {
		t.Error("no-guard placement should leak")
	}
	// Original ZebRAM's 50% is insufficient against blast radius 2.
	if byScheme["ZebRAM, 1 guard/row (50%)"].Safe {
		t.Error("1 guard/row should leak at blast radius 2 (Half-Double)")
	}
	// 2 guards/row stops distance-2 disturbance; 4 is the paper's safe
	// figure for modern parts.
	if !byScheme["ZebRAM, 4 guards/row (80%)"].Safe {
		t.Error("4 guards/row should be safe")
	}
	// Siloz: safe at ~zero overhead.
	siloz := byScheme["Siloz subarray groups (~0%)"]
	if !siloz.Safe {
		t.Error("subarray groups leaked")
	}
	if siloz.OverheadPct > 1 {
		t.Error("Siloz overhead should be ~0")
	}
	r, err := (zebramExp{}).Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("zebram checks failed: %+v", r.Checks)
	}
	if !strings.Contains(RenderText(r), "ZebRAM") {
		t.Error("render malformed")
	}
}
