package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Pool is a bounded worker pool shared by every level of the experiment
// scheduler: RunAll fans out across experiments, and each experiment fans
// out across its repetitions (or DIMMs, or workloads) through the same
// pool, so total concurrent measurement work never exceeds the pool width.
//
// Determinism does not depend on scheduling: every task writes only into
// its own index-addressed slot, and all per-task RNG seeds derive from the
// task index (see repSeed), so a width-1 pool, a width-N pool, and a nil
// pool (inline execution) produce bit-for-bit identical results.
//
// To stay deadlock-free, Pool methods must not be nested: code running
// under Run or inside a Map task must not call back into the pool.
// Orchestration code (booting hypervisors, aggregating samples) runs
// outside the pool; only leaf measurement work occupies slots.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool of the given width; width <= 0 means GOMAXPROCS.
func NewPool(width int) *Pool {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, width)}
}

// Width returns the pool's worker bound (0 for a nil, inline pool).
func (p *Pool) Width() int {
	if p == nil {
		return 0
	}
	return cap(p.sem)
}

func (p *Pool) acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *Pool) release() { <-p.sem }

// Run executes one leaf task under a worker slot (inline for a nil pool).
// Monolithic experiments wrap their whole body in Run so a width-1 pool
// serializes them against other experiments' work.
func (p *Pool) Run(ctx context.Context, fn func() error) error {
	if p == nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn()
	}
	if err := p.acquire(ctx); err != nil {
		return err
	}
	defer p.release()
	return fn()
}

// Map runs fn(0)..fn(n-1), each under a worker slot, and returns the
// lowest-index error. fn must write results only into slot i of a
// caller-owned slice — collection is by index, never by arrival — which is
// what makes parallel and serial runs bit-for-bit identical. A canceled
// ctx stops launching new tasks; in-flight tasks are awaited.
func (p *Pool) Map(ctx context.Context, n int, fn func(i int) error) error {
	if p == nil {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := p.acquire(ctx); err != nil {
			errs[i] = err
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer p.release()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// repSeedSalt decorrelates per-rep RNG streams: rep i of an experiment
// seeded S draws from rand.NewSource(S + i*repSeedSalt), so every rep is
// an independent, reproducible stream regardless of which worker runs it
// or in what order.
const repSeedSalt = 7919

// repSeed derives repetition i's RNG seed from an experiment's base seed.
func repSeed(base int64, rep int) int64 { return base + int64(rep)*repSeedSalt }

// RepSeed is the exported form of the per-rep seed derivation, for commands
// that fan their own repetitions (siloz-sim, siloz-blacksmith) and must
// match the scheduler's scheme.
func RepSeed(base int64, rep int) int64 { return repSeed(base, rep) }

// RunAll executes the experiments on cfg.Pool (allocating a GOMAXPROCS
// pool if cfg.Pool is nil), fanning out across experiments and, inside
// each, across repetitions. Results are collected by registry index; if
// onDone is non-nil it is called in input order — result i is delivered
// only after results 0..i-1 — with the experiment's wall time, so callers
// can stream output whose bytes do not depend on scheduling.
//
// The first failure (by input order) cancels the remaining work and is
// returned; results completed before the failure are still returned.
func RunAll(ctx context.Context, exps []Experiment, cfg Config, onDone func(r *Result, elapsed time.Duration)) ([]*Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if cfg.Pool == nil {
		cfg.Pool = NewPool(0)
	}
	results := make([]*Result, len(exps))
	errs := make([]error, len(exps))
	elapsed := make([]time.Duration, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	for i, e := range exps {
		go func(i int, e Experiment) {
			defer close(done[i])
			start := time.Now()
			results[i], errs[i] = e.Run(ctx, cfg)
			elapsed[i] = time.Since(start)
			if errs[i] != nil {
				cancel() // abort the rest; first in-order error wins below
			}
		}(i, e)
	}
	var firstErr error
	for i := range exps {
		<-done[i]
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", exps[i].Name(), errs[i])
			}
			continue
		}
		if firstErr == nil && onDone != nil {
			onDone(results[i], elapsed[i])
		}
	}
	return results, firstErr
}
