package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// renderRun executes the named experiments through RunAll on a pool of the
// given width and returns the concatenated text and JSON renderings, in
// delivery order.
func renderRun(t *testing.T, names []string, cfg Config, width int) (string, []byte) {
	t.Helper()
	var exps []Experiment
	for _, n := range names {
		e, ok := Get(n)
		if !ok {
			t.Fatalf("experiment %q not registered", n)
		}
		exps = append(exps, e)
	}
	cfg.Pool = NewPool(width)
	var text strings.Builder
	var js bytes.Buffer
	_, err := RunAll(context.Background(), exps, cfg, func(r *Result, _ time.Duration) {
		text.WriteString(RenderText(r))
		out, err := RenderJSON(r)
		if err != nil {
			t.Fatal(err)
		}
		js.Write(out)
	})
	if err != nil {
		t.Fatal(err)
	}
	return text.String(), js.Bytes()
}

// TestParallelDeterminism is the API's core guarantee: a width-1 pool and a
// width-8 pool produce byte-identical output, for both renderers, across a
// mix of rep-fanned (fig5), DIMM-fanned (table3) and monolithic (overhead,
// zebram) experiments.
func TestParallelDeterminism(t *testing.T) {
	cfg := Config{Perf: QuickPerfConfig(), Security: quickSecurity()}
	cfg.Perf.Ops = 4000
	cfg.Perf.Reps = 2
	names := []string{"table3", "fig5", "overhead", "zebram"}

	text1, js1 := renderRun(t, names, cfg, 1)
	text8, js8 := renderRun(t, names, cfg, 8)
	if text1 != text8 {
		t.Errorf("text output differs between -parallel 1 and -parallel 8:\n--- width 1 ---\n%s\n--- width 8 ---\n%s", text1, text8)
	}
	if !bytes.Equal(js1, js8) {
		t.Errorf("JSON output differs between -parallel 1 and -parallel 8")
	}
	// And a nil pool (pure inline execution) matches too.
	var exps []Experiment
	for _, n := range names {
		e, _ := Get(n)
		exps = append(exps, e)
	}
	var inline strings.Builder
	for _, e := range exps {
		r, err := e.Run(context.Background(), Config{Perf: cfg.Perf, Security: cfg.Security})
		if err != nil {
			t.Fatal(err)
		}
		inline.WriteString(RenderText(r))
	}
	if inline.String() != text1 {
		t.Error("inline (nil pool) output differs from pooled output")
	}
}

// TestRunAllStreamsInOrder verifies onDone delivery follows input order, not
// completion order, regardless of experiment cost imbalance.
func TestRunAllStreamsInOrder(t *testing.T) {
	names := []string{"overhead", "softrefresh", "fragmentation", "ddr5"}
	var exps []Experiment
	for _, n := range names {
		e, ok := Get(n)
		if !ok {
			t.Fatalf("experiment %q not registered", n)
		}
		exps = append(exps, e)
	}
	var got []string
	results, err := RunAll(context.Background(), exps, Config{Perf: QuickPerfConfig(), Pool: NewPool(4)},
		func(r *Result, _ time.Duration) { got = append(got, r.Name) })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(names) {
		t.Fatalf("results = %d, want %d", len(results), len(names))
	}
	for i, n := range names {
		if got[i] != n {
			t.Fatalf("delivery order %v, want %v", got, names)
		}
		if results[i].Name != n {
			t.Fatalf("results[%d] = %s, want %s", i, results[i].Name, n)
		}
	}
}

// TestRunAllFirstErrorWins verifies the first in-order failure is reported,
// wrapped with the experiment name, and cancels the remaining work.
func TestRunAllFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{
		fakeExp{name: "ok"},
		fakeExp{name: "bad", err: boom},
		fakeExp{name: "after"},
	}
	var delivered []string
	_, err := RunAll(context.Background(), exps, Config{Pool: NewPool(2)},
		func(r *Result, _ time.Duration) { delivered = append(delivered, r.Name) })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "bad:") {
		t.Errorf("error %q not prefixed with the failing experiment", err)
	}
	// Only experiments before the failure may have been delivered.
	for _, n := range delivered {
		if n != "ok" {
			t.Errorf("delivered %q after the failure point", n)
		}
	}
}

// fakeExp is a trivial experiment for scheduler-level tests.
type fakeExp struct {
	name string
	err  error
}

func (f fakeExp) Name() string { return f.name }

func (f fakeExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	if f.err != nil {
		return nil, f.err
	}
	return &Result{Name: f.name, Title: f.name}, nil
}

// TestCancellationPropagates verifies a long experiment returns promptly —
// with a context error — once the caller cancels.
func TestCancellationPropagates(t *testing.T) {
	cfg := Config{Perf: DefaultPerfConfig(), Security: DefaultSecurityConfig(), Pool: NewPool(2)}
	cfg.Perf.Ops = 500_000 // far more work than the deadline allows
	cfg.Perf.Reps = 8
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	e, ok := Get("fig4")
	if !ok {
		t.Fatal("fig4 not registered")
	}
	start := time.Now()
	_, err := e.Run(ctx, cfg)
	if err == nil {
		t.Fatal("Run completed despite cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("Run took %v to notice cancellation", d)
	}
}

// TestPoolMapErrors verifies Map reports the lowest-index error and that a
// canceled context stops launching tasks.
func TestPoolMapErrors(t *testing.T) {
	p := NewPool(4)
	err := p.Map(context.Background(), 8, func(i int) error {
		if i == 6 || i == 3 {
			return fmt.Errorf("task %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 3" {
		t.Fatalf("err = %v, want lowest-index task 3", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	if err := p.Map(ctx, 4, func(i int) error { ran++; return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d tasks ran under a pre-canceled context", ran)
	}
}

// TestRepSeedScheme pins the per-rep seed derivation: rep i draws from
// base + i*7919, and the exported form matches.
func TestRepSeedScheme(t *testing.T) {
	if got := repSeed(1, 0); got != 1 {
		t.Errorf("repSeed(1,0) = %d", got)
	}
	if got := repSeed(1, 3); got != 1+3*7919 {
		t.Errorf("repSeed(1,3) = %d", got)
	}
	if RepSeed(42, 5) != repSeed(42, 5) {
		t.Error("RepSeed diverges from repSeed")
	}
}

// TestRegistry pins the registry's contents and lookup behavior.
func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 24 {
		t.Fatalf("registry has %d experiments, want 24", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate experiment name %q", n)
		}
		seen[n] = true
		e, ok := Get(n)
		if !ok || e.Name() != n {
			t.Fatalf("Get(%q) inconsistent", n)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get of unknown name succeeded")
	}
	for _, want := range []string{"table3", "ept", "fig4", "fig5", "fig67", "blp",
		"overhead", "softrefresh", "remaps", "gbpages", "ecc", "fragmentation",
		"migration", "ballooning", "hotplug", "ddr5", "drama", "actrates", "zebram",
		"ept-relocation", "fleet-churn", "lifecycle-attack", "mitigation-matrix",
		"serving-slo"} {
		if !seen[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
}

// TestRenderers pins the render formats on a synthetic result.
func TestRenderers(t *testing.T) {
	r := &Result{
		Name:    "fake",
		Title:   "Fake experiment",
		Columns: []string{"count", "ok"},
		Units:   []string{"ops", ""},
		Rows: []Row{
			{Label: "alpha", Cells: []any{42, true}},
			{Label: "beta", Cells: []any{7, false}},
		},
		Series: []Series{{Name: "overhead", Unit: "%", Points: []Point{
			{Label: "redis-a", Value: 0.5, CI: 0.3},
			{Label: "geomean", Value: 0.12},
		}}},
	}
	r.scalar("answer", 42)
	r.check("sane", true, "all good")

	text := RenderText(r)
	for _, want := range []string{"Fake experiment", "count (ops)", "alpha", "yes",
		"overhead", "geomean", "answer", "check sane: PASS (all good)"} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}

	js1, err := RenderJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	js2, err := RenderJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Error("JSON rendering not deterministic")
	}
	for _, want := range []string{`"name": "fake"`, `"scalars"`, `"answer": 42`} {
		if !strings.Contains(string(js1), want) {
			t.Errorf("JSON missing %q:\n%s", want, js1)
		}
	}

	csv := RenderCSV(r)
	for _, want := range []string{"series,label,value,ci95", "overhead,redis-a,0.5000,0.3000", "overhead,geomean,0.1200"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q:\n%s", want, csv)
		}
	}
	// Table-only results fall back to row CSV.
	r.Series = nil
	csv = RenderCSV(r)
	for _, want := range []string{"label,count,ok", "alpha,42,yes"} {
		if !strings.Contains(csv, want) {
			t.Errorf("table CSV missing %q:\n%s", want, csv)
		}
	}
}
