package experiments

import (
	"context"

	"repro/internal/addr"
	"repro/internal/geometry"
	"repro/internal/memctrl"
)

// DRAMARow is one configuration of the §8.4 timing-side-channel study: an
// attacker times accesses to its own rows while a co-located victim is idle
// or active; a bank-conflict latency difference is a DRAMA-style channel.
type DRAMARow struct {
	// Mapping names the address-mapping configuration.
	Mapping string
	// IdleNs and BusyNs are the attacker's mean probe latencies with the
	// victim idle vs active.
	IdleNs, BusyNs float64
	// SignalPct is the relative latency increase the attacker observes.
	SignalPct float64
}

// Leaks reports whether the attacker can distinguish victim activity.
func (r DRAMARow) Leaks() bool { return r.SignalPct > 2 }

// dramaExp is the "drama" experiment: the §8.4 timing side channel.
type dramaExp struct{}

func (dramaExp) Name() string { return "drama" }

func (dramaExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	var rows []DRAMARow
	err := cfg.Pool.Run(ctx, func() error {
		var err error
		rows, err = DRAMAStudy()
		return err
	})
	if err != nil {
		return nil, err
	}
	r := &Result{
		Name:    "drama",
		Title:   "DRAM timing side channel (DRAMA, §8.4)",
		Columns: []string{"idle", "busy", "signal", "leaks"},
		Units:   []string{"ns", "ns", "%", ""},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, Row{Label: row.Mapping,
			Cells: []any{row.IdleNs, row.BusyNs, row.SignalPct, row.Leaks()}})
		switch row.Mapping {
		case "interleaved (Siloz/baseline)":
			r.scalar("shared_signal_pct", row.SignalPct)
			r.check("shared_banks_leak", row.Leaks(),
				"bank sharing preserves the DRAMA channel under Siloz")
		case "bank-partitioned (future)":
			r.scalar("partitioned_signal_pct", row.SignalPct)
			r.check("partitioned_banks_silent", !row.Leaks(),
				"bank-partitioned addressing closes the channel")
		}
	}
	r.Notes = append(r.Notes,
		"Siloz's subarray groups stop Rowhammer but share banks, so the timing channel persists;",
		"bank-partitioned addressing (§8.4 future work) closes it.")
	return r, nil
}

// dramaProbe measures the attacker's mean probe latency. The attacker
// alternates between two rows of one bank (guaranteed row conflicts against
// itself) while the victim, when active, streams over its own region.
func dramaProbe(mapper addr.Mapper, attackerBase, victimBase uint64, victimActive bool) (float64, error) {
	ctrl, err := memctrl.New(memctrl.Config{
		Mapper:    mapper,
		Timing:    memctrl.DDR4_2933(),
		MLPWindow: 4,
	})
	if err != nil {
		return 0, err
	}
	g := mapper.Geometry()
	rowStride := uint64(g.BanksPerSocket()) * geometry.CacheLineSize * uint64(g.RowBytes/geometry.CacheLineSize)
	// Two attacker addresses one row apart in the same bank.
	probeA := attackerBase
	probeB := attackerBase + rowStride

	const probes = 4000
	var attackerTotal float64
	for i := 0; i < probes; i++ {
		pa := probeA
		if i%2 == 1 {
			pa = probeB
		}
		_, observed, err := ctrl.DoTimed(memctrl.Access{PA: pa, ThinkNs: 50})
		if err != nil {
			return 0, err
		}
		attackerTotal += observed
		if victimActive {
			// The victim works on a hot structure (e.g. a database
			// page): its accesses alternate rows of one bank. Only
			// bank sharing lets that delay the attacker's requests.
			for v := 0; v < 3; v++ {
				vpa := victimBase
				if (i*3+v)%2 == 1 {
					vpa += rowStride
				}
				if _, err := ctrl.Do(memctrl.Access{PA: vpa}); err != nil {
					return 0, err
				}
			}
		}
	}
	return attackerTotal / probes, nil
}

// DRAMAStudy runs the probe under the default interleaved mapping (shared
// banks — used by both Siloz and the baseline) and under a bank-partitioned
// mapping where attacker and victim own disjoint banks.
func DRAMAStudy() ([]DRAMARow, error) {
	g := geometry.Default()
	var out []DRAMARow

	shared, err := addr.NewMapper(g, addr.KindSkylake)
	if err != nil {
		return nil, err
	}
	part, err := addr.NewPartitionedMapper(g, 2)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name                     string
		mapper                   addr.Mapper
		attackerBase, victimBase uint64
	}{
		// Shared banks: attacker in one subarray group, victim in
		// another — Rowhammer-isolated but bank-sharing.
		{"interleaved (Siloz/baseline)", shared, 0, 3 * geometry.GiB},
		// Partitioned: attacker in partition 0, victim in partition 1.
		{"bank-partitioned (future)", part, 0, uint64(g.SocketBytes() / 2)},
	}
	for _, c := range cases {
		idle, err := dramaProbe(c.mapper, c.attackerBase, c.victimBase, false)
		if err != nil {
			return nil, err
		}
		busy, err := dramaProbe(c.mapper, c.attackerBase, c.victimBase, true)
		if err != nil {
			return nil, err
		}
		out = append(out, DRAMARow{
			Mapping:   c.name,
			IdleNs:    idle,
			BusyNs:    busy,
			SignalPct: 100 * (busy/idle - 1),
		})
	}
	return out, nil
}
