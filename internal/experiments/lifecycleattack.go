package experiments

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
)

// LifecycleAttackConfig parameterizes the "lifecycle-attack" experiment:
// adversarial Blacksmith-style campaigns driven concurrently with the four
// VM-lifecycle windows where frames change owners (migration pre-copy,
// balloon drain-back, hotplug adoption, cross-host double ownership), each
// preceded by the attacker's own mapping inference. The experiment asserts
// the containment invariant campaign by campaign.
type LifecycleAttackConfig struct {
	// Campaigns selects the lifecycle windows attacked; empty = all four
	// (attack.Campaigns order).
	Campaigns []string
	// Reps repeats each campaign with salt-spaced seeds.
	Reps int
	// Rounds is the lifecycle iterations per campaign run.
	Rounds int
	// Seed drives every campaign's randomness.
	Seed int64
}

// DefaultLifecycleAttackConfig runs all four campaigns twice.
func DefaultLifecycleAttackConfig() LifecycleAttackConfig {
	return LifecycleAttackConfig{Reps: 2, Rounds: 2, Seed: 41}
}

// QuickLifecycleAttackConfig trims to one rep and one round per campaign —
// still all four campaign classes.
func QuickLifecycleAttackConfig() LifecycleAttackConfig {
	cfg := DefaultLifecycleAttackConfig()
	cfg.Reps = 1
	cfg.Rounds = 1
	return cfg
}

func (cfg *LifecycleAttackConfig) normalize() {
	def := DefaultLifecycleAttackConfig()
	if len(cfg.Campaigns) == 0 {
		cfg.Campaigns = attack.Campaigns()
	}
	if cfg.Reps == 0 {
		cfg.Reps = def.Reps
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = def.Rounds
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
}

// lifecycleLabConfig is the campaign box: the migration lab geometry (3
// guest nodes of 64 MiB per socket) with the deterministic-flip profile, so
// hammering bites and every flip is attributable.
func lifecycleLabConfig() core.Config {
	return core.Config{
		Geometry:      migrationLabGeometry(),
		Profiles:      []dram.Profile{eptRelocProfile()},
		EPTProtection: ept.GuardRows,
	}
}

type lifecycleAttackExp struct{}

func (lifecycleAttackExp) Name() string { return "lifecycle-attack" }

func (lifecycleAttackExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	lc := cfg.Lifecycle
	lc.normalize()

	type cell struct {
		campaign string
		rep      int
	}
	var cells []cell
	for _, c := range lc.Campaigns {
		for r := 0; r < lc.Reps; r++ {
			cells = append(cells, cell{c, r})
		}
	}
	results := make([]*attack.CampaignResult, len(cells))
	err := cfg.Pool.Map(ctx, len(cells), func(i int) error {
		cl := cells[i]
		r, err := attack.RunCampaign(cl.campaign, attack.CampaignConfig{
			Core:   lifecycleLabConfig(),
			Seed:   repSeed(lc.Seed, i),
			Rounds: lc.Rounds,
		})
		if err != nil {
			return fmt.Errorf("campaign %s rep %d: %w", cl.campaign, cl.rep, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name: "lifecycle-attack",
		Title: "Lifecycle attack campaigns: adversarial hammering across ownership-transfer " +
			"windows stays contained",
		Columns: []string{
			"campaign", "reps", "rounds", "bursts", "attacker flips", "cross-domain flips",
			"denied", "violations", "scrub leaks", "corruptions", "audits", "adjacency",
		},
		Units: []string{
			"", "", "", "", "", "", "", "", "", "bytes", "passed", "confirmed",
		},
		Metadata: map[string]string{
			"geometry": migrationLabGeometry().String(),
			"seed":     fmt.Sprintf("%d", lc.Seed),
			"reps":     fmt.Sprintf("%d", lc.Reps),
		},
	}

	// Aggregate per campaign, in the configured order.
	type aggT struct {
		reps int
		sum  attack.CampaignResult
	}
	agg := map[string]*aggT{}
	for i, r := range results {
		a := agg[cells[i].campaign]
		if a == nil {
			a = &aggT{}
			agg[cells[i].campaign] = a
		}
		a.reps++
		a.sum.Rounds += r.Rounds
		a.sum.HammerBursts += r.HammerBursts
		a.sum.AttackerFlips += r.AttackerFlips
		a.sum.CrossDomainFlips += r.CrossDomainFlips
		a.sum.Denied += r.Denied
		a.sum.WindowViolations += r.WindowViolations
		a.sum.ScrubLeaks += r.ScrubLeaks
		a.sum.VictimCorruptions += r.VictimCorruptions
		a.sum.AuditsPassed += r.AuditsPassed
		a.sum.AuditFailures += r.AuditFailures
		a.sum.AdjacencyProbed += r.AdjacencyProbed
		a.sum.AdjacencyConfirmed += r.AdjacencyConfirmed
	}

	var total attack.CampaignResult
	inferredAll, burstsAll := true, true
	for _, name := range lc.Campaigns {
		a := agg[name]
		s := a.sum
		res.Rows = append(res.Rows, Row{Label: name, Cells: []any{
			name, a.reps, s.Rounds, s.HammerBursts, s.AttackerFlips, s.CrossDomainFlips,
			s.Denied, s.WindowViolations, s.ScrubLeaks, s.VictimCorruptions,
			s.AuditsPassed, s.AdjacencyConfirmed,
		}})
		res.scalar("lifecycle_attacker_flips_"+name, float64(s.AttackerFlips))
		res.scalar("lifecycle_cross_domain_flips_"+name, float64(s.CrossDomainFlips))
		res.scalar("lifecycle_denied_"+name, float64(s.Denied))
		if s.AdjacencyConfirmed == 0 {
			inferredAll = false
		}
		if s.HammerBursts == 0 || s.AttackerFlips == 0 {
			burstsAll = false
		}
		total.HammerBursts += s.HammerBursts
		total.AttackerFlips += s.AttackerFlips
		total.CrossDomainFlips += s.CrossDomainFlips
		total.Denied += s.Denied
		total.WindowViolations += s.WindowViolations
		total.ScrubLeaks += s.ScrubLeaks
		total.VictimCorruptions += s.VictimCorruptions
		total.AuditsPassed += s.AuditsPassed
		total.AuditFailures += s.AuditFailures
	}
	res.scalar("lifecycle_attacker_flips", float64(total.AttackerFlips))
	res.scalar("lifecycle_cross_domain_flips", float64(total.CrossDomainFlips))
	res.scalar("lifecycle_denied_probes", float64(total.Denied))
	res.scalar("lifecycle_scrub_leaks", float64(total.ScrubLeaks))
	res.scalar("lifecycle_audits_passed", float64(total.AuditsPassed))

	res.check("cross_domain_flip_free", total.CrossDomainFlips == 0,
		fmt.Sprintf("%d attacker-domain flips, 0 outside any attacker domain", total.AttackerFlips))
	res.check("windows_sealed", total.WindowViolations == 0,
		fmt.Sprintf("%d probes denied across every ownership-transfer window", total.Denied))
	res.check("scrub_clean", total.ScrubLeaks == 0 && total.VictimCorruptions == 0,
		"no freed/adopted frame observed non-zero; victim data byte-identical across every move")
	res.check("audits_clean", total.AuditFailures == 0 && total.AuditsPassed > 0,
		fmt.Sprintf("%d isolation audits passed, including inside the cross-host double-ownership window",
			total.AuditsPassed))
	res.check("attack_nonvacuous", burstsAll && total.Denied > 0,
		fmt.Sprintf("every campaign landed bursts and flipped attacker-domain bits (%d bursts total)",
			total.HammerBursts))
	res.check("mapping_inferred", inferredAll,
		"each campaign's attacker confirmed row adjacency from inside its own domain first")

	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d hammer bursts across %d campaign cells produced %d flips, all inside attacker domains; "+
			"every cross-domain probe was denied (%d) and every audit held",
		total.HammerBursts, len(cells), total.AttackerFlips, total.Denied))
	return res, nil
}
