package experiments

import (
	"bytes"
	"context"
	"testing"
)

// TestFleetChurnExperiment runs the quick trace and pins its invariants:
// every check passes (round-by-round audits, complete trace accounting,
// typed rejections, capacity conservation) and the run is deterministic —
// identical JSON bytes at parallelism 1 and 4, per the experiment's
// contract that the pool only fans across policies.
func TestFleetChurnExperiment(t *testing.T) {
	cfg := Config{Fleet: QuickFleetConfig()}
	r, err := (fleetChurnExp{}).Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(r.Rows), len(QuickFleetConfig().Policies); got != want {
		t.Fatalf("quick run produced %d rows, want %d (one per policy)", got, want)
	}
	for _, c := range r.Checks {
		if !c.Pass {
			t.Errorf("check %s failed: %s", c.Name, c.Detail)
		}
	}
	// The quick trace must exercise real churn, not a trivially empty fleet.
	for _, row := range r.Rows {
		if row.Cells[1].(int) == 0 {
			t.Errorf("policy %s admitted no VMs", row.Label)
		}
	}

	j1, err := RenderJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4)
	r2, err := (fleetChurnExp{}).Run(context.Background(), Config{Fleet: QuickFleetConfig(), Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := RenderJSON(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("fleet-churn is not deterministic across parallelism widths")
	}
}

// TestDefaultFleetConfigScale pins the acceptance floor: at least 1000
// arrivals across at least 8 hosts.
func TestDefaultFleetConfigScale(t *testing.T) {
	fc := DefaultFleetConfig()
	if fc.Hosts < 8 {
		t.Errorf("default fleet has %d hosts, want >= 8", fc.Hosts)
	}
	if n := fc.Rounds * fc.ArrivalsPerRound; n < 1000 {
		t.Errorf("default trace has %d arrivals, want >= 1000", n)
	}
}
