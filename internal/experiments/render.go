package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Rendering lives here, apart from the experiments themselves: Run returns
// a structured *Result and these functions turn it into text for the
// terminal, JSON for trajectory files, or CSV for external plotting. All
// three are deterministic functions of the Result, so identically
// configured runs — serial or parallel — emit identical bytes.

// RenderText formats a result as aligned, human-readable text.
func RenderText(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	if len(r.Columns) > 0 {
		renderTable(&b, r)
	}
	for _, s := range r.Series {
		renderSeries(&b, s)
	}
	if len(r.Scalars) > 0 {
		keys := make([]string, 0, len(r.Scalars))
		for k := range r.Scalars {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%-32s %s\n", k, formatCell(r.Scalars[k]))
		}
	}
	for _, c := range r.Checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		if c.Detail != "" {
			fmt.Fprintf(&b, "check %s: %s (%s)\n", c.Name, verdict, c.Detail)
		} else {
			fmt.Fprintf(&b, "check %s: %s\n", c.Name, verdict)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "%s\n", n)
	}
	return b.String()
}

// renderTable writes the rows aligned under a header line. Units, when
// present, annotate the column headers.
func renderTable(b *strings.Builder, r *Result) {
	headers := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		if i < len(r.Units) && r.Units[i] != "" {
			c += " (" + r.Units[i] + ")"
		}
		headers[i] = c
	}
	labelW := 0
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(headers))
		for ci := range headers {
			if ci < len(row.Cells) {
				cells[ri][ci] = formatCell(row.Cells[ci])
			}
			if len(cells[ri][ci]) > widths[ci] {
				widths[ci] = len(cells[ri][ci])
			}
		}
	}
	fmt.Fprintf(b, "%-*s", labelW, "")
	for i, h := range headers {
		fmt.Fprintf(b, "  %*s", widths[i], h)
	}
	b.WriteString("\n")
	for ri, row := range r.Rows {
		fmt.Fprintf(b, "%-*s", labelW, row.Label)
		for ci := range headers {
			fmt.Fprintf(b, "  %*s", widths[ci], cells[ri][ci])
		}
		b.WriteString("\n")
	}
}

// renderSeries writes one figure's bars the way the paper's figures read:
// labeled values with 95% confidence half-widths.
func renderSeries(b *strings.Builder, s Series) {
	fmt.Fprintf(b, "%s\n", s.Name)
	for _, p := range s.Points {
		if p.CI != 0 {
			fmt.Fprintf(b, "  %-22s %+8.2f%s ±%.2f%s\n", p.Label, p.Value, s.Unit, p.CI, s.Unit)
		} else {
			fmt.Fprintf(b, "  %-22s %+8.2f%s\n", p.Label, p.Value, s.Unit)
		}
	}
}

// formatCell formats one table cell or scalar.
func formatCell(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case bool:
		if x {
			return "yes"
		}
		return "no"
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', 6, 64)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// RenderJSON marshals the result as one indented JSON document — the
// machine-readable form `siloz-bench -json` emits per experiment and the
// BENCH_*.json perf trajectories consume. Map keys marshal sorted, so the
// bytes are deterministic.
func RenderJSON(r *Result) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("experiments: encoding %s: %w", r.Name, err)
	}
	return append(out, '\n'), nil
}

// csvField quotes a field per RFC 4180 when it contains a comma, quote or
// newline; plain fields pass through unchanged.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// RenderCSV renders the result's series as comma-separated rows for
// external plotting, one block per series. Results without series render
// their table rows instead.
func RenderCSV(r *Result) string {
	var b strings.Builder
	if len(r.Series) > 0 {
		b.WriteString("series,label,value,ci95\n")
		for _, s := range r.Series {
			for _, p := range s.Points {
				fmt.Fprintf(&b, "%s,%s,%.4f,%.4f\n", csvField(s.Name), csvField(p.Label), p.Value, p.CI)
			}
		}
		return b.String()
	}
	b.WriteString("label")
	for _, c := range r.Columns {
		b.WriteString("," + csvField(c))
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		b.WriteString(csvField(row.Label))
		for _, c := range row.Cells {
			b.WriteString("," + csvField(formatCell(c)))
		}
		b.WriteString("\n")
	}
	return b.String()
}
