package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/migrate"
	"repro/internal/numa"
)

// MigrationConfig parameterizes the "migration" experiment: live pre-copy
// cost (rounds, pages copied, stop-and-copy downtime) as a function of VM
// size and guest write rate, under Siloz domains and under the baseline.
type MigrationConfig struct {
	// Geometry of the simulated server; zero value = a small two-socket
	// lab box (64 MiB subarray groups) so each migration runs in
	// milliseconds.
	Geometry geometry.Geometry
	// VMSizes are the guest RAM sizes swept.
	VMSizes []uint64
	// WriteRates are guest write intensities: 2 MiB pages dirtied per
	// pre-copy round.
	WriteRates []int
	// CopyGiBps is the modeled page-copy bandwidth. Downtime is reported
	// as stop-and-copy bytes divided by this figure — a pure function of
	// the copied byte count, never a wall-clock measurement, so results
	// are bit-for-bit reproducible.
	CopyGiBps float64
	// Seed drives the guest's page-dirtying pattern.
	Seed int64
}

// migrationLabGeometry is the small two-socket box the migration and
// defrag studies run on: 4 subarray groups of 64 MiB per socket, so under
// Siloz each socket carves into 1 host + 1 EPT + 3 guest nodes.
func migrationLabGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets:         2,
		CoresPerSocket:  4,
		DIMMsPerSocket:  1,
		RanksPerDIMM:    2,
		BanksPerRank:    8,
		RowsPerBank:     2048,
		RowBytes:        8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

// migrationLabProfile strips the DRAM transforms so subarray groups form
// without artificial padding; rowhammer susceptibility is irrelevant here.
func migrationLabProfile() dram.Profile {
	p := dram.ProfileF()
	p.Transforms = addr.TransformConfig{}
	return p
}

// DefaultMigrationConfig sweeps one- and two-node VMs across idle,
// moderate, and write-heavy guests.
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{
		VMSizes:    []uint64{64 * geometry.MiB, 128 * geometry.MiB},
		WriteRates: []int{0, 4, 12},
		CopyGiBps:  12,
		Seed:       11,
	}
}

// QuickMigrationConfig trims the sweep for smoke runs.
func QuickMigrationConfig() MigrationConfig {
	cfg := DefaultMigrationConfig()
	cfg.VMSizes = []uint64{64 * geometry.MiB}
	cfg.WriteRates = []int{0, 4}
	return cfg
}

// migrationRun is one cell of the sweep.
type migrationRun struct {
	mode    core.Mode
	vmBytes uint64
	rate    int
}

// migrationRowResult is one completed run, index-addressed for the pool.
type migrationRowResult struct {
	run       migrationRun
	rep       *core.MigrateReport
	intact    bool
	auditErr  error
	ramPages  int
	downtimeM float64 // modeled stop-and-copy milliseconds
}

func (r migrationRun) label() string {
	mode := "baseline"
	if r.mode == core.ModeSiloz {
		mode = "siloz"
	}
	return fmt.Sprintf("%s %dMiB rate=%d", mode, r.vmBytes/geometry.MiB, r.rate)
}

// migrationDestNodes picks enough free destination nodes on the far socket
// to hold the VM: guest-reserved and unowned under Siloz, host memory under
// the baseline.
func migrationDestNodes(h *core.Hypervisor, vmBytes uint64) ([]int, error) {
	kind := numa.HostReserved
	if h.Mode() == core.ModeSiloz {
		kind = numa.GuestReserved
	}
	var ids []int
	var capacity uint64
	for _, n := range h.Topology().NodesOnSocket(1, kind) {
		if _, owned := h.Registry().OwnerOf(n.ID); owned {
			continue
		}
		a, err := h.Allocator(n.ID)
		if err != nil {
			return nil, err
		}
		ids = append(ids, n.ID)
		capacity += a.FreeBytes()
		if capacity >= vmBytes {
			return ids, nil
		}
	}
	return nil, fmt.Errorf("experiments: no destination capacity for %d bytes on socket 1", vmBytes)
}

// runMigration boots a fresh system, fills a VM with a deterministic
// pattern, migrates it cross-socket while the guest dirties `rate` pages
// per round, and verifies byte identity afterwards.
func runMigration(ctx context.Context, cfg MigrationConfig, run migrationRun, seed int64) (*migrationRowResult, error) {
	g := cfg.Geometry
	if g.Sockets == 0 {
		g = migrationLabGeometry()
	}
	h, err := core.Boot(core.Config{
		Geometry:      g,
		Profiles:      []dram.Profile{migrationLabProfile()},
		EPTProtection: ept.GuardRows,
	}, run.mode)
	if err != nil {
		return nil, err
	}
	vm, err := h.CreateVM(core.Process{CGroup: "kvm", KVMPrivileged: true},
		core.VMSpec{Name: "mig", Socket: 0, MemoryBytes: run.vmBytes})
	if err != nil {
		return nil, err
	}
	pages := int(run.vmBytes / geometry.PageSize2M)
	rng := rand.New(rand.NewSource(seed))

	// The guest's view of its own memory: the first 4 KiB of every page it
	// has written, for the byte-identity check after landing.
	const chunk = 4 * geometry.KiB
	mirror := make([][]byte, pages)
	writePage := func(p int, version byte) error {
		buf := make([]byte, chunk)
		for i := range buf {
			buf[i] = byte(i)*3 + version | 1
		}
		if err := vm.WriteGuest(uint64(p)*geometry.PageSize2M, buf); err != nil {
			return err
		}
		mirror[p] = buf
		return nil
	}
	// Pre-populate half the pages so zero-skip has work on the other half.
	for p := 0; p < pages; p += 2 {
		if err := writePage(p, byte(rng.Intn(200))); err != nil {
			return nil, err
		}
	}

	dests, err := migrationDestNodes(h, run.vmBytes)
	if err != nil {
		return nil, err
	}
	opt := core.MigrateOptions{
		MaxRounds: 16,
		StopPages: 8,
		GuestStep: func(round int) error {
			for i := 0; i < run.rate; i++ {
				if err := writePage(rng.Intn(pages), byte(round*31+i)); err != nil {
					return err
				}
			}
			return nil
		},
	}
	rep, err := h.MigrateVM(ctx, "mig", dests, opt)
	if err != nil {
		return nil, err
	}

	res := &migrationRowResult{run: run, rep: rep, ramPages: pages, intact: true}
	res.downtimeM = float64(rep.DowntimeBytes) / (cfg.CopyGiBps * float64(geometry.GiB)) * 1e3
	probe := make([]byte, chunk)
	for p := 0; p < pages; p++ {
		if err := vm.ReadGuest(uint64(p)*geometry.PageSize2M, probe); err != nil {
			return nil, err
		}
		want := mirror[p]
		for i := range probe {
			w := byte(0)
			if want != nil {
				w = want[i]
			}
			if probe[i] != w {
				res.intact = false
				break
			}
		}
	}
	if run.mode == core.ModeSiloz {
		res.auditErr = migrate.AuditIsolation(h)
	}
	return res, nil
}

// migrationExp is the "migration" experiment: live pre-copy cost vs. VM
// size and guest write rate, Siloz vs. baseline.
type migrationExp struct{}

func (migrationExp) Name() string { return "migration" }

func (migrationExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	mc := cfg.Migration
	if len(mc.VMSizes) == 0 || len(mc.WriteRates) == 0 {
		mc = DefaultMigrationConfig()
	}
	if mc.CopyGiBps <= 0 {
		mc.CopyGiBps = DefaultMigrationConfig().CopyGiBps
	}
	var runs []migrationRun
	for _, mode := range []core.Mode{core.ModeSiloz, core.ModeBaseline} {
		for _, size := range mc.VMSizes {
			for _, rate := range mc.WriteRates {
				runs = append(runs, migrationRun{mode: mode, vmBytes: size, rate: rate})
			}
		}
	}
	results := make([]*migrationRowResult, len(runs))
	err := cfg.Pool.Map(ctx, len(runs), func(i int) error {
		var err error
		results[i], err = runMigration(ctx, mc, runs[i], repSeed(mc.Seed, i))
		return err
	})
	if err != nil {
		return nil, err
	}

	r := &Result{
		Name:    "migration",
		Title:   "Live pre-copy migration cost vs. guest write rate",
		Columns: []string{"rounds", "copied", "amplification", "downtime", "modeled downtime", "converged"},
		Units:   []string{"", "pages", "x", "pages", "ms", ""},
		Metadata: map[string]string{
			"downtime_model": fmt.Sprintf("stop-and-copy bytes / %.0f GiB/s", mc.CopyGiBps),
		},
	}
	intact, idleClean, boundOK, auditsOK := true, true, true, true
	maxDowntime, totalCopied := 0, 0
	for _, res := range results {
		rep := res.rep
		amp := float64(rep.PagesCopied) / float64(res.ramPages)
		r.Rows = append(r.Rows, Row{
			Label: res.run.label(),
			Cells: []any{len(rep.Rounds), rep.PagesCopied, amp, rep.DowntimePages, res.downtimeM, rep.Converged},
		})
		intact = intact && res.intact
		auditsOK = auditsOK && res.auditErr == nil
		if res.run.rate == 0 && (!rep.Converged || rep.DowntimePages != 0) {
			idleClean = false
		}
		// Pre-copy bounds residual downtime by the last round's write
		// set, not the VM size.
		if rep.DowntimePages > 2*res.run.rate+8 {
			boundOK = false
		}
		if rep.DowntimePages > maxDowntime {
			maxDowntime = rep.DowntimePages
		}
		totalCopied += rep.PagesCopied
	}
	r.scalar("max_downtime_pages", float64(maxDowntime))
	r.scalar("total_pages_copied", float64(totalCopied))
	r.check("memory_intact", intact,
		"guest bytes identical across migration, including writes made mid-flight")
	r.check("idle_zero_downtime", idleClean,
		"an idle guest converges with an empty stop-and-copy set")
	r.check("downtime_tracks_write_rate", boundOK,
		"stop-and-copy set bounded by the final round's dirty pages, not VM size")
	r.check("isolation_held", auditsOK,
		"Siloz domain exclusivity audited after every move")
	r.Notes = append(r.Notes,
		"downtime is modeled from copied bytes at fixed bandwidth, so identical runs emit identical results")
	return r, nil
}
