package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/fleet"
	"repro/internal/geometry"
)

// round2 rounds to two decimals so rendered tables stay readable; the
// rounding is deterministic, so JSON output remains byte-stable.
func round2(v float64) float64 { return math.Round(v*100) / 100 }

// FleetConfig parameterizes the "fleet-churn" experiment: a multi-host
// fleet under a traced churn workload — thousands of VM arrivals, resizes,
// and departures — once per placement policy, reporting capacity,
// migration-downtime, and stranded-capacity metrics at fleet scale.
type FleetConfig struct {
	// Hosts is the simulated machine count.
	Hosts int
	// Geometry of each host; zero value = the fleet lab box (8 subarray
	// groups of 64 MiB per socket: 14 guest nodes, 896 MiB per host).
	Geometry geometry.Geometry
	// Policies are the placement policies compared; empty = all built-ins.
	Policies []string
	// Rounds / ArrivalsPerRound shape the trace.
	Rounds           int
	ArrivalsPerRound int
	// VMSizes are the guest RAM sizes drawn uniformly.
	VMSizes []uint64
	// MinLifetime/MaxLifetime bound VM stays, in rounds.
	MinLifetime, MaxLifetime int
	// ResizeProb is the chance of one mid-life resize.
	ResizeProb float64
	// TouchPages is how many 2 MiB pages each VM stamps at admission
	// (the data migrations must carry).
	TouchPages int
	// CopyGiBps converts downtime bytes to modeled milliseconds.
	CopyGiBps float64
	// Seed drives the trace and every injected guest write.
	Seed int64
}

// fleetLabGeometry is the per-host box: 8 subarray groups of 64 MiB per
// socket so each socket carves into 1 host + 1 EPT + 7 guest nodes.
func fleetLabGeometry() geometry.Geometry {
	g := migrationLabGeometry()
	g.RowsPerBank = 4096
	return g
}

// DefaultFleetConfig runs ≥1000 arrivals across 8 hosts (7 GiB of guest
// capacity fleet-wide) with the trace sized to oversubscribe it, so every
// policy takes real rejections and the scheduler has hot hosts to drain.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		Hosts:            8,
		Rounds:           42,
		ArrivalsPerRound: 24,
		VMSizes: []uint64{
			64 * geometry.MiB, 96 * geometry.MiB,
			128 * geometry.MiB, 192 * geometry.MiB,
		},
		MinLifetime: 1,
		MaxLifetime: 3,
		ResizeProb:  0.25,
		TouchPages:  2,
		CopyGiBps:   12,
		Seed:        29,
	}
}

// QuickFleetConfig trims hosts and trace for smoke runs.
func QuickFleetConfig() FleetConfig {
	cfg := DefaultFleetConfig()
	cfg.Hosts = 3
	cfg.Rounds = 5
	cfg.ArrivalsPerRound = 8
	cfg.Policies = []string{"first-fit", "siloz-aware"}
	return cfg
}

func (cfg *FleetConfig) normalize() {
	def := DefaultFleetConfig()
	if cfg.Hosts == 0 {
		cfg.Hosts = def.Hosts
	}
	if cfg.Geometry == (geometry.Geometry{}) {
		cfg.Geometry = fleetLabGeometry()
	}
	if len(cfg.Policies) == 0 {
		for _, p := range fleet.Policies() {
			cfg.Policies = append(cfg.Policies, p.Name())
		}
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = def.Rounds
	}
	if cfg.ArrivalsPerRound == 0 {
		cfg.ArrivalsPerRound = def.ArrivalsPerRound
	}
	if len(cfg.VMSizes) == 0 {
		cfg.VMSizes = def.VMSizes
	}
	if cfg.MinLifetime == 0 {
		cfg.MinLifetime = def.MinLifetime
	}
	if cfg.MaxLifetime == 0 {
		cfg.MaxLifetime = def.MaxLifetime
	}
	if cfg.TouchPages == 0 {
		cfg.TouchPages = def.TouchPages
	}
	if cfg.CopyGiBps == 0 {
		cfg.CopyGiBps = def.CopyGiBps
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
}

// fleetPolicyResult is one policy's complete churn run, index-addressed
// for the pool.
type fleetPolicyResult struct {
	policy        string
	arrivals      int
	admitted      int
	rejected      int
	resizeOK      int
	resizeDenied  int
	untypedReject int // rejections NOT matching fleet.ErrNoPlacement
	peakUtil      float64
	peakStranded  float64 // fraction of guest capacity
	finalStranded float64
	crossMoves    int
	defragMoves   int
	migratedMiB   float64
	downtimeMs    float64
	auditRounds   int
	auditErr      error
	leftoverNodes int // owned guest nodes after the final drain
}

type fleetChurnExp struct{}

func (fleetChurnExp) Name() string { return "fleet-churn" }

func (fleetChurnExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	fc := cfg.Fleet
	fc.normalize()

	trace := fleet.GenerateTrace(fleet.TraceConfig{
		Seed:             fc.Seed,
		Rounds:           fc.Rounds,
		ArrivalsPerRound: fc.ArrivalsPerRound,
		VMSizes:          fc.VMSizes,
		MinLifetime:      fc.MinLifetime,
		MaxLifetime:      fc.MaxLifetime,
		ResizeProb:       fc.ResizeProb,
	})

	results := make([]*fleetPolicyResult, len(fc.Policies))
	err := cfg.Pool.Map(ctx, len(fc.Policies), func(i int) error {
		r, err := runFleetPolicy(ctx, fc, fc.Policies[i], trace)
		if err != nil {
			return fmt.Errorf("policy %s: %w", fc.Policies[i], err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name:  "fleet-churn",
		Title: "Fleet churn: admission, rebalancing and stranded capacity across placement policies",
		Columns: []string{
			"policy", "admitted", "rejected", "peak util", "peak stranded",
			"final stranded", "cross moves", "defrag moves", "migrated", "downtime", "audits",
		},
		Units: []string{
			"", "VMs", "VMs", "%", "%", "%", "", "", "MiB", "ms", "rounds",
		},
		Metadata: map[string]string{
			"hosts":    fmt.Sprintf("%d", fc.Hosts),
			"arrivals": fmt.Sprintf("%d", len(trace)),
			"geometry": fc.Geometry.String(),
			"seed":     fmt.Sprintf("%d", fc.Seed),
		},
	}

	auditsOK, traceOK, typedOK, conservedOK := true, true, true, true
	admittedTotal := 0
	for _, r := range results {
		res.Rows = append(res.Rows, Row{Label: r.policy, Cells: []any{
			r.policy, r.admitted, r.rejected,
			round2(r.peakUtil * 100), round2(r.peakStranded * 100),
			round2(r.finalStranded * 100),
			r.crossMoves, r.defragMoves, round2(r.migratedMiB), round2(r.downtimeMs),
			r.auditRounds,
		}})
		res.scalar("fleet_admitted_"+r.policy, float64(r.admitted))
		res.scalar("fleet_rejected_"+r.policy, float64(r.rejected))
		res.scalar("fleet_peak_util_pct_"+r.policy, round2(r.peakUtil*100))
		res.scalar("fleet_peak_stranded_pct_"+r.policy, round2(r.peakStranded*100))
		res.scalar("fleet_cross_moves_"+r.policy, float64(r.crossMoves))
		res.scalar("fleet_downtime_ms_"+r.policy, round2(r.downtimeMs))

		if r.auditErr != nil {
			auditsOK = false
			res.Notes = append(res.Notes, fmt.Sprintf("%s audit failure: %v", r.policy, r.auditErr))
		}
		if r.admitted+r.rejected != r.arrivals {
			traceOK = false
		}
		if r.untypedReject > 0 {
			typedOK = false
		}
		if r.leftoverNodes != 0 {
			conservedOK = false
		}
		admittedTotal += r.admitted
	}
	res.check("audits_passed", auditsOK,
		fmt.Sprintf("fleet-wide isolation audit after every churn round (%d rounds x %d policies)",
			results[0].auditRounds, len(results)))
	res.check("trace_complete", traceOK,
		fmt.Sprintf("every traced arrival admitted or rejected (%d arrivals per policy)", len(trace)))
	res.check("typed_rejections", typedOK,
		"every admission rejection matches fleet.ErrNoPlacement via errors.Is")
	res.check("capacity_conserved", conservedOK,
		"all guest nodes return to the free pool after the final drain")
	res.check("churn_nonvacuous", admittedTotal > 0 && len(trace) >= fc.Rounds*fc.ArrivalsPerRound,
		fmt.Sprintf("%d VMs admitted across %d policies", admittedTotal, len(results)))

	if len(results) > 1 {
		base, last := results[0], results[len(results)-1]
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s admitted %d vs %s %d at peak stranded %.1f%% vs %.1f%% — node-granular "+
				"exclusivity is the isolation rent; placement policy sets the price",
			last.policy, last.admitted, base.policy, base.admitted,
			last.peakStranded*100, base.peakStranded*100))
	}
	return res, nil
}

// runFleetPolicy drives the full trace through one fresh cluster. The
// driver is single-threaded and quiesces between phases; hosts run
// single-worker event loops — determinism by construction, parallelism
// only across policies (via the caller's pool).
func runFleetPolicy(ctx context.Context, fc FleetConfig, policyName string, trace []fleet.Arrival) (*fleetPolicyResult, error) {
	policy, err := fleet.PolicyByName(policyName)
	if err != nil {
		return nil, err
	}
	cluster, err := fleet.New(fleet.Config{
		Hosts: fc.Hosts,
		Core: core.Config{
			Geometry: fc.Geometry,
			Profiles: []dram.Profile{fleetLabProfile()},
		},
		Policy:    policy,
		CopyGiBps: fc.CopyGiBps,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	sched := fleet.NewScheduler(cluster, fleet.SchedulerConfig{Seed: fc.Seed})
	proc := core.Process{CGroup: "kvm", KVMPrivileged: true}

	res := &fleetPolicyResult{policy: policyName, arrivals: len(trace)}
	arrivalsAt := map[int][]fleet.Arrival{}
	for _, a := range trace {
		arrivalsAt[a.Round] = append(arrivalsAt[a.Round], a)
	}
	departAt := map[int][]string{}
	resizeAt := map[int][]fleet.Arrival{}
	stampRng := rand.New(rand.NewSource(fc.Seed + 1))
	stamp := make([]byte, 128)

	lastRound := fc.Rounds + fc.MaxLifetime
	for round := 0; round <= lastRound; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Phase 1: departures scheduled for this round, submitted async.
		var departOps []*fleet.Op
		for _, name := range departAt[round] {
			op, err := cluster.SubmitDepart(name)
			if err != nil {
				return nil, fmt.Errorf("round %d depart %s: %w", round, name, err)
			}
			departOps = append(departOps, op)
		}
		if err := cluster.Quiesce(ctx); err != nil {
			return nil, err
		}
		for _, op := range departOps {
			if err := op.Err(); err != nil {
				return nil, fmt.Errorf("round %d depart: %w", round, err)
			}
		}

		// Phase 2: arrivals, synchronous in trace order.
		for _, a := range arrivalsAt[round] {
			hostName, err := cluster.Admit(ctx, proc, core.VMSpec{
				Name:           a.Name,
				MemoryBytes:    a.Bytes,
				MinMemoryBytes: a.MinBytes,
				VCPUs:          1,
			})
			if err != nil {
				res.rejected++
				if !errors.Is(err, fleet.ErrNoPlacement) {
					res.untypedReject++
				}
				continue
			}
			res.admitted++
			departAt[a.DepartRound] = append(departAt[a.DepartRound], a.Name)
			if a.ResizeRound >= 0 {
				resizeAt[a.ResizeRound] = append(resizeAt[a.ResizeRound], a)
			}
			// Stamp guest pages so migrations carry real data.
			h, err := cluster.Host(hostName)
			if err != nil {
				return nil, err
			}
			if vm, ok := h.Hypervisor().VM(a.Name); ok {
				pages := int(a.Bytes / geometry.PageSize2M)
				for p := 0; p < fc.TouchPages && p < pages; p++ {
					stampRng.Read(stamp)
					if err := vm.WriteGuest(uint64(p)*geometry.PageSize2M, stamp); err != nil {
						return nil, fmt.Errorf("stamp %s: %w", a.Name, err)
					}
				}
			}
		}

		// Phase 3: scheduled resizes, async then quiesced. A denied
		// resize (no adoptable capacity) is a legitimate outcome under
		// load, not an experiment failure.
		var resizeOps []*fleet.Op
		for _, a := range resizeAt[round] {
			op, err := cluster.SubmitResize(a.Name, a.ResizeBytes)
			if err != nil {
				res.resizeDenied++
				continue
			}
			resizeOps = append(resizeOps, op)
		}
		if err := cluster.Quiesce(ctx); err != nil {
			return nil, err
		}
		for _, op := range resizeOps {
			if op.Err() != nil {
				res.resizeDenied++
			} else {
				res.resizeOK++
			}
		}

		// Phase 4: the migration scheduler's rebalancing round.
		rep, err := sched.Round(ctx)
		if err != nil {
			return nil, fmt.Errorf("round %d rebalance: %w", round, err)
		}
		res.crossMoves += rep.CrossMoves
		res.defragMoves += rep.DefragMoves

		// Phase 5: fleet-wide isolation audit and metrics sample.
		if err := cluster.AuditIsolation(); err != nil {
			res.auditErr = fmt.Errorf("round %d: %w", round, err)
			return res, nil
		}
		res.auditRounds++
		m, err := cluster.Metrics()
		if err != nil {
			return nil, err
		}
		if u := m.Utilization(); u > res.peakUtil {
			res.peakUtil = u
		}
		if s := m.StrandedFraction(); s > res.peakStranded {
			res.peakStranded = s
		}
		res.finalStranded = m.StrandedFraction()
	}

	// Final drain: every surviving VM departs; capacity must return.
	var drainOps []*fleet.Op
	for _, name := range cluster.VMs() {
		op, err := cluster.SubmitDepart(name)
		if err != nil {
			return nil, err
		}
		drainOps = append(drainOps, op)
	}
	if err := cluster.Quiesce(ctx); err != nil {
		return nil, err
	}
	for _, op := range drainOps {
		if err := op.Err(); err != nil {
			return nil, fmt.Errorf("final drain: %w", err)
		}
	}
	if err := cluster.AuditIsolation(); err != nil {
		res.auditErr = fmt.Errorf("final drain: %w", err)
		return res, nil
	}
	m, err := cluster.Metrics()
	if err != nil {
		return nil, err
	}
	res.leftoverNodes = m.OwnedNodes

	stats := cluster.Stats()
	res.migratedMiB = float64(stats.MigratedBytes) / float64(geometry.MiB)
	res.downtimeMs = stats.DowntimeMs(fc.CopyGiBps)
	return res, nil
}

// fleetLabProfile strips DRAM transforms (grouping without padding), same
// as the migration lab.
func fleetLabProfile() dram.Profile { return migrationLabProfile() }
