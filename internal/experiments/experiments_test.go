package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/geometry"
)

// quickSecurity shrinks the campaign for unit testing.
func quickSecurity() SecurityConfig {
	cfg := DefaultSecurityConfig()
	cfg.Geometry = geometry.Geometry{
		Sockets: 2, CoresPerSocket: 4, DIMMsPerSocket: 2, RanksPerDIMM: 2,
		BanksPerRank: 4, RowsPerBank: 2048, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
	cfg.Patterns = 30
	return cfg
}

func TestTable3ContainmentQuick(t *testing.T) {
	res, err := Table3Containment(context.Background(), nil, quickSecurity())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (DIMMs A-F)", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.FlipsInside == 0 {
			t.Errorf("DIMM %s: no flips inside the group; campaign ineffective", r.DIMM)
		}
		if r.FlipsOutside != 0 {
			t.Errorf("DIMM %s: %d flips escaped the subarray group", r.DIMM, r.FlipsOutside)
		}
	}
	if !res.Contained() {
		t.Error("containment violated")
	}
	r, err := (table3Exp{}).Run(context.Background(), Config{Security: quickSecurity()})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderText(r)
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "check contained: PASS") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestEPTProtectionQuick(t *testing.T) {
	cfg := quickSecurity()
	res, err := EPTProtection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtectedFlips != 0 {
		t.Errorf("protected rows flipped %d times", res.ProtectedFlips)
	}
	if res.UnprotectedFlips == 0 {
		t.Error("unprotected control rows did not flip; experiment vacuous")
	}
	if !res.TranslationsIntact {
		t.Error("EPT translations corrupted despite guard rows")
	}
	r, err := (eptExp{}).Run(context.Background(), Config{Security: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("ept checks failed: %+v", r.Checks)
	}
	if !strings.Contains(RenderText(r), "protected") {
		t.Error("render malformed")
	}
}

// quickPerf shrinks the performance experiments for unit testing.
func quickPerf() PerfConfig {
	cfg := QuickPerfConfig()
	cfg.Ops = 4000
	cfg.Reps = 2
	return cfg
}

func TestFig4Quick(t *testing.T) {
	fig, err := Fig4ExecutionTime(context.Background(), nil, quickPerf())
	if err != nil {
		t.Fatal(err)
	}
	// redis a-f, terasort, spec, parsec = 9 bars.
	if len(fig.Bars) != 9 {
		t.Fatalf("bars = %d, want 9", len(fig.Bars))
	}
	if !fig.WithinHalfPercent() {
		t.Errorf("geomean overhead %.2f%% outside ±0.5%% (paper's headline claim)", fig.GeomeanPct)
	}
	for _, b := range fig.Bars {
		if b.OverheadPct > 3 || b.OverheadPct < -3 {
			t.Errorf("bar %s overhead %.2f%% implausibly large", b.Name, b.OverheadPct)
		}
	}
	if !strings.Contains(RenderText(figureResult("fig4", fig)), "geomean") {
		t.Error("render malformed")
	}
}

func TestFig5Quick(t *testing.T) {
	fig, err := Fig5Throughput(context.Background(), nil, quickPerf())
	if err != nil {
		t.Fatal(err)
	}
	// memcached, mysql, 5 MLC modes = 7 bars.
	if len(fig.Bars) != 7 {
		t.Fatalf("bars = %d, want 7", len(fig.Bars))
	}
	if !fig.WithinHalfPercent() {
		t.Errorf("geomean overhead %.2f%% outside ±0.5%%", fig.GeomeanPct)
	}
}

func TestSizeSensitivityQuick(t *testing.T) {
	cfg := quickPerf()
	res, err := Fig6And7SizeSensitivity(context.Background(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{res.Time512, res.Time2048, res.Tput512, res.Tput2048} {
		if len(fig.Bars) == 0 {
			t.Fatalf("figure %q empty", fig.Title)
		}
		if !fig.WithinHalfPercent() {
			t.Errorf("%s geomean %.2f%% outside ±0.5%% (§7.4: no trend with subarray size)", fig.Title, fig.GeomeanPct)
		}
	}
}

func TestBankLevelParallelism(t *testing.T) {
	res, err := BankLevelParallelism(context.Background(), geometry.Default(), 40000)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeedupPct < 18 {
		t.Errorf("BLP benefit %.1f%%, paper cites >18%%", res.SpeedupPct)
	}
}

func TestOverheadComparison(t *testing.T) {
	rows := OverheadComparison(geometry.Default())
	if len(rows) < 5 {
		t.Fatal("too few schemes")
	}
	var siloz, zebram80 float64
	for _, r := range rows {
		switch r.Scheme {
		case "Siloz EPT block (b=32)":
			siloz = r.ReservedPct
		case "ZebRAM (4 guards/row, modern)":
			zebram80 = r.ReservedPct
		}
	}
	// §5.4: ~0.024% of each bank.
	if siloz < 0.02 || siloz > 0.03 {
		t.Errorf("Siloz EPT reservation %.4f%%, want ~0.024%%", siloz)
	}
	if zebram80 != 80 {
		t.Errorf("ZebRAM modern = %v, want 80", zebram80)
	}
	r, err := (overheadExp{}).Run(context.Background(), Config{Perf: QuickPerfConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderText(r), "ZebRAM") {
		t.Error("render malformed")
	}
}

func TestSoftRefreshComparison(t *testing.T) {
	task, tick := SoftRefreshComparison()
	if task.MissedDeadlines == 0 || tick.MissedDeadlines == 0 {
		t.Error("§8.3: both models must miss deadlines")
	}
	if task.MissRate() <= tick.MissRate() {
		t.Error("task model should miss more than tick model")
	}
}

func TestRemapHandling(t *testing.T) {
	rows, err := RemapHandling(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byRows := make(map[int]RemapRow)
	for _, r := range rows {
		byRows[r.SubarrayRows] = r
	}
	for _, p2 := range []int{512, 1024, 2048} {
		r := byRows[p2]
		if r.Artificial || r.ReservedPct != 0 {
			t.Errorf("power-of-2 size %d should need nothing: %+v", p2, r)
		}
	}
	for _, np2 := range []int{640, 768, 1280} {
		r := byRows[np2]
		if !r.Artificial || r.ReservedPct <= 0 {
			t.Errorf("size %d should form artificial groups with guards: %+v", np2, r)
		}
		// §6 band (with safe over-approximation): between ~0.39% and ~2%.
		if r.ReservedPct > 2.5 {
			t.Errorf("size %d reserves %.2f%%, far beyond the paper's band", np2, r.ReservedPct)
		}
	}
	rr, err := (remapsExp{}).Run(context.Background(), Config{Perf: QuickPerfConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderText(rr), "artificial") {
		t.Error("render malformed")
	}
}

func TestGiBPages(t *testing.T) {
	res, err := GiBPages(context.Background(), geometry.Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleSetFraction < 1.0/3 {
		t.Errorf("single-set fraction %.2f below the paper's 1/3 floor", res.SingleSetFraction)
	}
	if res.SingleSetFraction > 0.99 {
		t.Error("mapping jump should split some 1 GiB pages")
	}
}

func TestTable3FlipsAcrossRanksAndBanks(t *testing.T) {
	// §7.1: flips occur across ranks and banks of each DIMM.
	res, err := Table3Containment(context.Background(), nil, quickSecurity())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.RanksWithFlips < 2 {
			t.Errorf("DIMM %s: flips on %d ranks, want both", r.DIMM, r.RanksWithFlips)
		}
		if r.BanksWithFlips < 2 {
			t.Errorf("DIMM %s: flips in %d banks, want several", r.DIMM, r.BanksWithFlips)
		}
	}
}
