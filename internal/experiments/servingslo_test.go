package experiments

import (
	"bytes"
	"context"
	"testing"
)

func quickServingConfig() Config {
	return Config{ServingSLO: QuickServingSLOConfig()}
}

// TestServingSLORows: one row per (defense, scenario) cell, every check
// green, and the headline contrast present — quiet p99 well under the SLO
// for both baseline and Siloz, churn p99.9 above quiet for both.
func TestServingSLORows(t *testing.T) {
	r, err := servingSLOExp{}.Run(context.Background(), quickServingConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := 5 * 2; len(r.Rows) != want {
		t.Fatalf("got %d rows, want %d (five defenses x two scenarios)", len(r.Rows), want)
	}
	for _, c := range r.Checks {
		if !c.Pass {
			t.Errorf("check %s failed: %s", c.Name, c.Detail)
		}
	}
	for _, k := range []string{"none", "siloz"} {
		quiet, err := r.Scalar("sslo_p99_us_" + k + "_quiet")
		if err != nil {
			t.Fatal(err)
		}
		if quiet <= 0 || quiet >= 100 {
			t.Errorf("%s quiet p99 = %vus, want inside (0, SLO)", k, quiet)
		}
		churn, err := r.Scalar("sslo_p999_us_" + k + "_churn")
		if err != nil {
			t.Fatal(err)
		}
		quiet999, err := r.Scalar("sslo_p999_us_" + k + "_quiet")
		if err != nil {
			t.Fatal(err)
		}
		if churn <= quiet999 {
			t.Errorf("%s churn p99.9 (%vus) not above quiet (%vus)", k, churn, quiet999)
		}
		miss, err := r.Scalar("sslo_miss_pct_" + k + "_churn")
		if err != nil {
			t.Fatal(err)
		}
		if miss <= 0 {
			t.Errorf("%s churn run missed no SLOs; churn windows invisible", k)
		}
	}
}

// TestServingSLOParallelDeterminism: the serving grid renders byte-identical
// text and JSON on a width-1 and a width-8 pool — the acceptance criterion
// that lets its defense x scenario x rep cells fan out.
func TestServingSLOParallelDeterminism(t *testing.T) {
	cfg := quickServingConfig()
	names := []string{"serving-slo"}
	text1, js1 := renderRun(t, names, cfg, 1)
	text8, js8 := renderRun(t, names, cfg, 8)
	if text1 != text8 {
		t.Errorf("text output differs between -parallel 1 and -parallel 8:\n--- width 1 ---\n%s\n--- width 8 ---\n%s", text1, text8)
	}
	if !bytes.Equal(js1, js8) {
		t.Errorf("JSON output differs between -parallel 1 and -parallel 8")
	}
}
