package experiments

import (
	"context"
	"fmt"
)

// Experiment is one table, figure or study of the paper's evaluation. Run
// computes the result; it performs no I/O and renders nothing — rendering
// is the job of RenderText / RenderJSON / RenderCSV, so the same run can
// feed the terminal, machine-readable trajectory files, and future tooling.
//
// Run must be deterministic in cfg (all randomness derives from the seeds
// in cfg), must honor ctx cancellation promptly, and must perform parallel
// work only through cfg.Pool so the scheduler's -parallel bound holds.
type Experiment interface {
	// Name is the registry key (e.g. "fig4"), also used as -exp value.
	Name() string
	// Run executes the experiment and returns its structured result.
	Run(ctx context.Context, cfg Config) (*Result, error)
}

// Config carries everything an experiment may need. Each experiment reads
// the part relevant to it and ignores the rest.
type Config struct {
	// Perf parameterizes the performance experiments (Figs. 4-7, actrates).
	Perf PerfConfig
	// Security parameterizes the §7.1 experiments (table3, ept).
	Security SecurityConfig
	// Migration parameterizes the live pre-copy migration experiment.
	// A zero value falls back to DefaultMigrationConfig.
	Migration MigrationConfig
	// Balloon parameterizes the memory-ballooning experiment. A zero
	// value falls back to DefaultBalloonConfig.
	Balloon BalloonConfig
	// Hotplug parameterizes the memory-hotplug experiment. A zero value
	// falls back to DefaultHotplugConfig.
	Hotplug HotplugConfig
	// EPTReloc parameterizes the EPT-table relocation experiment. A zero
	// value falls back to DefaultEPTRelocConfig.
	EPTReloc EPTRelocConfig
	// Fleet parameterizes the fleet-churn experiment. A zero value falls
	// back to DefaultFleetConfig.
	Fleet FleetConfig
	// Lifecycle parameterizes the lifecycle-attack experiment. A zero value
	// falls back to DefaultLifecycleAttackConfig.
	Lifecycle LifecycleAttackConfig
	// Matrix parameterizes the mitigation-matrix experiment. A zero value
	// falls back to DefaultMitigationMatrixConfig.
	Matrix MitigationMatrixConfig
	// ServingSLO parameterizes the serving-slo experiment. A zero value
	// falls back to DefaultServingSLOConfig.
	ServingSLO ServingSLOConfig
	// Pool bounds parallel work. A nil Pool runs everything inline on the
	// calling goroutine (bit-for-bit identical results either way; results
	// are always collected by index, never by arrival order).
	Pool *Pool
}

// Result is the structured outcome of one experiment: tabular rows, figure
// series, headline scalars, pass/fail checks, and free-form notes. It is
// the single currency between experiments and renderers, and it marshals
// deterministically to JSON.
type Result struct {
	// Name is the experiment's registry key.
	Name string `json:"name"`
	// Title is the human heading (e.g. "Table 3: ...").
	Title string `json:"title"`
	// Columns are the table column headers; Units, when set, is parallel
	// to Columns ("" = unitless).
	Columns []string `json:"columns,omitempty"`
	Units   []string `json:"units,omitempty"`
	// Rows are the table rows, in canonical order.
	Rows []Row `json:"rows,omitempty"`
	// Series are figure bar groups (baseline-normalized overheads etc.).
	Series []Series `json:"series,omitempty"`
	// Scalars are headline quantities (geomean overhead, total flips...),
	// the values benchmark trajectories track.
	Scalars map[string]float64 `json:"scalars,omitempty"`
	// Checks are the experiment's pass/fail assertions against the paper.
	Checks []Check `json:"checks,omitempty"`
	// Notes are free-form conclusion lines.
	Notes []string `json:"notes,omitempty"`
	// Metadata records configuration context (mode, profile names...).
	// It must not contain wall-clock times or anything else that varies
	// between identically-configured runs.
	Metadata map[string]string `json:"metadata,omitempty"`
}

// Row is one table row: a label plus cells parallel to Result.Columns.
// Cells hold string, bool, int or float64 values.
type Row struct {
	Label string `json:"label"`
	Cells []any  `json:"cells,omitempty"`
}

// Series is one named group of figure points (e.g. one figure's bars).
type Series struct {
	Name string `json:"name"`
	// Unit annotates point values ("%", "ns", "GiB", ...).
	Unit   string  `json:"unit,omitempty"`
	Points []Point `json:"points"`
}

// Point is one bar: a labeled value with an optional 95% CI half-width.
type Point struct {
	Label string  `json:"label"`
	Value float64 `json:"value"`
	CI    float64 `json:"ci,omitempty"`
}

// Check is one named pass/fail assertion against the paper's claims.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// Passed reports whether every check passed.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Scalar returns the named scalar, or an error naming the result if it is
// absent (guards against silent typos in trajectory tooling).
func (r *Result) Scalar(name string) (float64, error) {
	v, ok := r.Scalars[name]
	if !ok {
		return 0, fmt.Errorf("experiments: result %q has no scalar %q", r.Name, name)
	}
	return v, nil
}

// check appends a pass/fail assertion.
func (r *Result) check(name string, pass bool, detail string) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: detail})
}

// scalar records a headline quantity.
func (r *Result) scalar(name string, v float64) {
	if r.Scalars == nil {
		r.Scalars = make(map[string]float64)
	}
	r.Scalars[name] = v
}
