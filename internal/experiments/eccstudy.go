package experiments

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/geometry"
)

// ECCStudyResult reproduces the paper's argument for why ECC alone cannot
// replace isolation (§2.5, §3):
//
//   - most hammered words suffer single-bit errors: corrected, but each
//     correction is an observable platform event (Copy-on-Flip's detection
//     signal — and an attacker-visible side channel);
//   - some words take multi-bit errors: uncorrectable machine checks;
//   - and whether a given weak cell produces a correction event depends on
//     the stored data, so correction patterns leak victim contents
//     (RAMBleed-style inference).
type ECCStudyResult struct {
	// WordsClean, WordsCorrected, WordsUncorrectable, WordsMiscorrected
	// classify the victim row's 64-bit words after hammering.
	WordsClean, WordsCorrected, WordsUncorrectable, WordsMiscorrected int
	// CorrectionEventsA and CorrectionEventsB are correctable-error
	// counts when the victim stores secret A (0xAA) vs secret B (0x55).
	CorrectionEventsA, CorrectionEventsB int
	// Leak reports whether correction counts distinguish the secrets.
	Leak bool
}

// eccExp is the "ecc" experiment: ECC under Rowhammer.
type eccExp struct{}

func (eccExp) Name() string { return "ecc" }

func (eccExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	var res ECCStudyResult
	err := cfg.Pool.Run(ctx, func() error {
		var err error
		res, err = ECCStudy()
		return err
	})
	if err != nil {
		return nil, err
	}
	r := &Result{Name: "ecc", Title: "ECC under Rowhammer (§2.5, §3)"}
	r.scalar("words_clean", float64(res.WordsClean))
	r.scalar("words_corrected", float64(res.WordsCorrected))
	r.scalar("words_uncorrectable", float64(res.WordsUncorrectable))
	r.scalar("words_miscorrected", float64(res.WordsMiscorrected))
	r.scalar("correction_events_secret_a", float64(res.CorrectionEventsA))
	r.scalar("correction_events_secret_b", float64(res.CorrectionEventsB))
	r.check("multibit_errors_present", res.WordsUncorrectable > 0,
		fmt.Sprintf("%d uncorrectable words: ECC alone yields machine checks", res.WordsUncorrectable))
	r.check("correction_side_channel", res.Leak,
		fmt.Sprintf("correction events differ by stored secret (%d vs %d)",
			res.CorrectionEventsA, res.CorrectionEventsB))
	r.Notes = append(r.Notes,
		"each correction is an attacker-visible platform event; patterns depend on victim data")
	return r, nil
}

// eccGeometry is a small single-module server for the study.
func eccGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
		BanksPerRank: 2, RowsPerBank: 2048, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

// hammerVictim fills the victim row with pat, hammers both neighbours hard,
// and returns the row's resulting bytes.
func hammerVictim(prof dram.Profile, victim int, pat byte) ([]byte, error) {
	g := eccGeometry()
	mod, err := dram.NewModule(g, prof, 0, 0, nil)
	if err != nil {
		return nil, err
	}
	b := geometry.BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 0}
	fill := bytes.Repeat([]byte{pat}, g.RowBytes)
	if err := mod.WriteRow(b, victim, 0, fill); err != nil {
		return nil, err
	}
	for _, agg := range []int{victim - 1, victim + 1} {
		if err := mod.ActivateRow(b, agg, int(prof.HammerThreshold)*2, 0); err != nil {
			return nil, err
		}
	}
	out := make([]byte, g.RowBytes)
	if err := mod.ReadRow(b, victim, 0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// classify runs SEC-DED over the row, comparing against the written
// pattern; check bits are those computed at write time.
func classify(rowBytes []byte, pat byte, res *ECCStudyResult) int {
	var expected [8]byte
	for i := range expected {
		expected[i] = pat
	}
	want := binary.LittleEndian.Uint64(expected[:])
	check := ecc.Encode(want)
	corrections := 0
	for off := 0; off+8 <= len(rowBytes); off += 8 {
		got := binary.LittleEndian.Uint64(rowBytes[off:])
		data, _, r := ecc.Decode(got, check)
		switch {
		case got == want && r == ecc.OK:
			res.WordsClean++
		case r == ecc.Corrected && data == want:
			res.WordsCorrected++
			corrections++
		case r == ecc.Uncorrectable:
			res.WordsUncorrectable++
		default:
			// Decoded "successfully" to the wrong value: silent
			// corruption despite ECC (the [25] attack surface).
			res.WordsMiscorrected++
		}
	}
	return corrections
}

// ECCStudy hammers one victim row under two different stored secrets and
// runs SEC-DED over the result.
func ECCStudy() (ECCStudyResult, error) {
	var res ECCStudyResult
	prof := dram.ProfileF()
	prof.Transforms = addr.TransformConfig{}
	prof.VulnerableRowFraction = 1
	prof.WeakCellsPerRow = 40 // enough weak cells for multi-bit words
	prof.HammerThreshold = 10_000

	rowA, err := hammerVictim(prof, 700, 0xAA)
	if err != nil {
		return res, err
	}
	res.CorrectionEventsA = classify(rowA, 0xAA, &res)

	// Same row, same weak cells, different secret: the correction-event
	// pattern changes with the data.
	var resB ECCStudyResult
	rowB, err := hammerVictim(prof, 700, 0x55)
	if err != nil {
		return res, err
	}
	res.CorrectionEventsB = classify(rowB, 0x55, &resB)

	res.Leak = res.CorrectionEventsA != res.CorrectionEventsB
	return res, nil
}
