package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/mitigation"
	"repro/internal/serve"
	"repro/internal/stats"
)

// ServingSLOConfig parameterizes the "serving-slo" experiment: two
// open-loop KV-serving tenants (one per socket) run against every
// deployable Rowhammer defense in a quiet scenario and a churn scenario —
// the same resize/migrate/defrag schedule replayed mid-serving — and each
// cell reports achieved QPS, latency percentiles, and the fraction of
// requests that missed the SLO. This is the paper's overhead question
// asked the way a service owner asks it: not "how much bandwidth", but
// "what happens to my p99 while the control plane churns".
type ServingSLOConfig struct {
	// Kinds selects defense rows; empty = every mitigation kind in
	// canonical order (none, para, silver-bullet, catt, siloz).
	Kinds []string
	// Scenarios selects columns; empty = quiet then churn.
	Scenarios []string
	// Reps repeats each cell with salt-spaced seeds; histograms merge.
	Reps int
	// DurationMs is the arrival horizon per rep, in virtual milliseconds.
	DurationMs float64
	// QPS is each tenant's open-loop arrival rate.
	QPS float64
	// SLOUs is the per-request latency SLO in microseconds.
	SLOUs float64
	// ValueBytes is the KV value size.
	ValueBytes uint64
	// Seed drives arrivals, key popularity, and churn dirtying.
	Seed int64
}

// DefaultServingSLOConfig serves 10 ms per rep at 150k QPS per tenant
// under a 100 µs SLO, two reps per cell.
func DefaultServingSLOConfig() ServingSLOConfig {
	return ServingSLOConfig{
		Reps:       2,
		DurationMs: 10,
		QPS:        150_000,
		SLOUs:      100,
		ValueBytes: 1024,
		Seed:       61,
	}
}

// QuickServingSLOConfig trims to one rep and a 4 ms horizon.
func QuickServingSLOConfig() ServingSLOConfig {
	cfg := DefaultServingSLOConfig()
	cfg.Reps = 1
	cfg.DurationMs = 4
	return cfg
}

func (cfg *ServingSLOConfig) normalize() {
	def := DefaultServingSLOConfig()
	if len(cfg.Kinds) == 0 {
		for _, k := range mitigation.Kinds() {
			cfg.Kinds = append(cfg.Kinds, k.String())
		}
	}
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = []string{"quiet", "churn"}
	}
	if cfg.Reps == 0 {
		cfg.Reps = def.Reps
	}
	if cfg.DurationMs == 0 {
		cfg.DurationMs = def.DurationMs
	}
	if cfg.QPS == 0 {
		cfg.QPS = def.QPS
	}
	if cfg.SLOUs == 0 {
		cfg.SLOUs = def.SLOUs
	}
	if cfg.ValueBytes == 0 {
		cfg.ValueBytes = def.ValueBytes
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
}

// servingChurnSchedule is the control-plane schedule every churn cell
// replays: shrink the first tenant, grow it back, live-migrate it
// cross-socket, then defragment its host. Times are fractions of the
// horizon so quick and default configs churn at the same relative points.
func servingChurnSchedule(durationNs float64) []serve.Event {
	return []serve.Event{
		{AtNs: 0.20 * durationNs, Kind: serve.EventResize, Tenant: "t0", TargetBytes: 32 * geometry.MiB},
		{AtNs: 0.45 * durationNs, Kind: serve.EventResize, Tenant: "t0", TargetBytes: 64 * geometry.MiB},
		{AtNs: 0.70 * durationNs, Kind: serve.EventMigrate, Tenant: "t0", DestSocket: 1, DirtyPages: 4},
		{AtNs: 0.85 * durationNs, Kind: serve.EventDefrag, Tenant: "t0", MaxMoves: 2},
	}
}

// servingCell is one rep's outcome, aggregated across reps in index order.
type servingCell struct {
	rep *serve.Report
}

type servingSLOExp struct{}

func (servingSLOExp) Name() string { return "serving-slo" }

// runServingRep boots a host deploying one defense, creates the two
// tenants, and serves one rep.
func runServingRep(ctx context.Context, cfg ServingSLOConfig, kind mitigation.Kind, churn bool, seed int64) (*serve.Report, error) {
	lab := lifecycleLabConfig()
	lab.Mitigation = mitigation.Spec{Kind: kind, Seed: seed}
	h, err := core.BootMitigated(lab)
	if err != nil {
		return nil, err
	}
	defer h.Shutdown()
	for i, socket := range []int{0, 1} {
		_, err := h.CreateVM(core.Process{CGroup: "kvm", KVMPrivileged: true}, core.VMSpec{
			Name: fmt.Sprintf("t%d", i), Socket: socket, MemoryBytes: 64 * geometry.MiB,
		})
		if err != nil {
			return nil, fmt.Errorf("tenant t%d: %w", i, err)
		}
	}
	durationNs := cfg.DurationMs * 1e6
	spec := lab.Mitigation
	scfg := serve.Config{
		Hypervisor: h,
		Tenants: []serve.TenantSpec{
			{VM: "t0", TargetQPS: cfg.QPS, ValueBytes: cfg.ValueBytes},
			{VM: "t1", TargetQPS: cfg.QPS, ValueBytes: cfg.ValueBytes},
		},
		DurationNs: durationNs,
		SLONs:      cfg.SLOUs * 1e3,
		Seed:       seed,
	}
	if spec.HasRowDefense() {
		banks := lab.Geometry.TotalBanks()
		scfg.Mitigation = func(_ string, socket int) mitigation.Mitigation {
			d, derr := spec.RowDefense(banks, mitigation.ScopeSeed(seed, socket))
			if derr != nil {
				return nil // unreachable post-Validate
			}
			return d
		}
	}
	if churn {
		scfg.Churn = servingChurnSchedule(durationNs)
	}
	l, err := serve.New(scfg)
	if err != nil {
		return nil, err
	}
	return l.Run(ctx)
}

func (servingSLOExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	sc := cfg.ServingSLO
	sc.normalize()

	kinds := make([]mitigation.Kind, len(sc.Kinds))
	for i, s := range sc.Kinds {
		k, err := mitigation.ParseKind(s)
		if err != nil {
			return nil, err
		}
		kinds[i] = k
	}

	// Cells fan out on the pool; each cell's seed derives from its index
	// alone, so parallel and serial schedules emit identical tables.
	type cellKey struct {
		ki, si int
	}
	cells := len(kinds) * len(sc.Scenarios) * sc.Reps
	reps := make([]servingCell, cells)
	err := cfg.Pool.Map(ctx, cells, func(i int) error {
		ki := i / (len(sc.Scenarios) * sc.Reps)
		si := i / sc.Reps % len(sc.Scenarios)
		churn := sc.Scenarios[si] == "churn"
		rep, err := runServingRep(ctx, sc, kinds[ki], churn, repSeed(sc.Seed, i))
		if err != nil {
			return fmt.Errorf("%v/%s rep %d: %w", kinds[ki], sc.Scenarios[si], i%sc.Reps, err)
		}
		reps[i].rep = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Aggregate reps per (kind, scenario) in index order.
	type agg struct {
		hist                         *stats.Histogram
		requests, errors, violations int64
		qpsSum                       float64
		reps                         int
		worstWindow                  string
		worstP99                     float64
		defragErrs, migrateErrs      int
		windows, windowsWithTraffic  int
	}
	aggs := map[cellKey]*agg{}
	for i := range reps {
		ki := i / (len(sc.Scenarios) * sc.Reps)
		si := i / sc.Reps % len(sc.Scenarios)
		a := aggs[cellKey{ki, si}]
		if a == nil {
			a = &agg{hist: stats.NewHistogram()}
			aggs[cellKey{ki, si}] = a
		}
		r := reps[i].rep
		a.hist.Merge(r.Total)
		a.requests += r.Requests
		a.errors += r.Errors
		a.violations += r.Violations
		a.qpsSum += r.AchievedQPS()
		a.reps++
		for _, w := range r.Windows {
			a.windows++
			if w.Err != "" {
				switch w.Kind {
				case serve.EventDefrag:
					a.defragErrs++
				case serve.EventMigrate:
					a.migrateErrs++
				}
				continue
			}
			if w.Hist.Count() == 0 {
				continue
			}
			a.windowsWithTraffic++
			if p := w.Hist.P99(); p > a.worstP99 {
				a.worstP99 = p
				a.worstWindow = w.Label
			}
		}
	}

	res := &Result{
		Name: "serving-slo",
		Title: "Request-level serving under SLOs: p99 latency and SLO misses per defense, " +
			"quiet vs control-plane churn (resize + migrate + defrag mid-serving)",
		Columns: []string{
			"defense", "scenario", "requests", "achieved", "p50", "p99", "p99.9",
			"slo-miss", "worst window",
		},
		Units: []string{
			"", "", "", "qps", "us", "us", "us", "%", "",
		},
		Metadata: map[string]string{
			"geometry": migrationLabGeometry().String(),
			"seed":     fmt.Sprintf("%d", sc.Seed),
			"reps":     fmt.Sprintf("%d", sc.Reps),
			"qps":      fmt.Sprintf("%.0f per tenant, open loop", sc.QPS),
			"slo":      fmt.Sprintf("%.0f us", sc.SLOUs),
			"horizon":  fmt.Sprintf("%.1f ms virtual", sc.DurationMs),
		},
	}

	p99Series := map[string]*Series{}
	for _, s := range sc.Scenarios {
		p99Series[s] = &Series{Name: "p99-" + s, Unit: "us"}
	}
	slug := func(k mitigation.Kind, scenario, name string) string {
		return "sslo_" + name + "_" + k.String() + "_" + scenario
	}
	for ki, k := range kinds {
		for si, scenario := range sc.Scenarios {
			a := aggs[cellKey{ki, si}]
			achieved := a.qpsSum / float64(a.reps)
			missPct := 0.0
			if ok := a.requests - a.errors; ok > 0 {
				missPct = 100 * float64(a.violations) / float64(ok)
			}
			worst := "-"
			if a.worstWindow != "" {
				worst = fmt.Sprintf("%s p99 %.0fus", a.worstWindow, a.worstP99/1e3)
			}
			res.Rows = append(res.Rows, Row{Label: k.String() + "/" + scenario, Cells: []any{
				k.String(), scenario, a.requests, round3(achieved),
				round3(a.hist.P50() / 1e3), round3(a.hist.P99() / 1e3),
				round3(a.hist.P999() / 1e3), round3(missPct), worst,
			}})
			res.scalar(slug(k, scenario, "p99_us"), round3(a.hist.P99()/1e3))
			res.scalar(slug(k, scenario, "p999_us"), round3(a.hist.P999()/1e3))
			res.scalar(slug(k, scenario, "miss_pct"), round3(missPct))
			res.scalar(slug(k, scenario, "qps"), round3(achieved))
			p99Series[scenario].Points = append(p99Series[scenario].Points,
				Point{Label: k.String(), Value: round3(a.hist.P99() / 1e3)})
		}
	}
	for _, s := range sc.Scenarios {
		res.Series = append(res.Series, *p99Series[s])
	}

	// Checks.
	idx := map[string]int{}
	for si, s := range sc.Scenarios {
		idx[s] = si
	}
	kidx := map[mitigation.Kind]int{}
	for ki, k := range kinds {
		kidx[k] = ki
	}
	if qi, ok := idx["quiet"]; ok {
		allMeet, errFree := true, true
		for ki := range kinds {
			a := aggs[cellKey{ki, qi}]
			if a.violations > 0 {
				allMeet = false
			}
			if a.errors > 0 {
				errFree = false
			}
		}
		res.check("quiet_meets_slo", allMeet,
			fmt.Sprintf("every defense serves %.0f us p99 SLO with zero misses when the control plane is quiet", sc.SLOUs))
		res.check("quiet_error_free", errFree, "no request failed on a quiet host")
		if ni, ok := kidx[mitigation.KindNone]; ok {
			if si, ok := kidx[mitigation.KindSiloz]; ok {
				base := aggs[cellKey{ni, qi}].hist.P99()
				siloz := aggs[cellKey{si, qi}].hist.P99()
				rel := siloz/base - 1
				res.check("siloz_tail_comparable", rel < 0.10 && rel > -0.10,
					fmt.Sprintf("siloz quiet p99 within ±10%% of baseline (%.2fus vs %.2fus): placement moves pages, not the tail",
						siloz/1e3, base/1e3))
			}
		}
	}
	if ci, ok := idx["churn"]; ok {
		spikes, misses := true, true
		for ki := range kinds {
			a := aggs[cellKey{ki, ci}]
			if qi, ok := idx["quiet"]; ok {
				if a.hist.P999() <= aggs[cellKey{ki, qi}].hist.P999() {
					spikes = false
				}
			}
			if a.violations == 0 {
				misses = false
			}
		}
		res.check("churn_spikes_tail", spikes,
			"churn p99.9 exceeds quiet p99.9 for every defense: blackout windows land in the tail")
		res.check("churn_causes_slo_misses", misses,
			"every defense misses the SLO during churn windows — lifecycle events are where the SLO budget goes")
		defragOK := true
		for ki, k := range kinds {
			a := aggs[cellKey{ki, ci}]
			wantErrs := a.reps // one defrag event per rep
			if k == mitigation.KindSiloz {
				wantErrs = 0
			}
			if a.defragErrs != wantErrs {
				defragOK = false
			}
		}
		res.check("defrag_exclusive_to_siloz", defragOK,
			"defragmentation runs only on Siloz hosts; every other defense's host refuses it (recorded as a window error, not a failure)")
	}

	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d serving reps: two open-loop tenants at %.0f qps each on a two-socket host, %s-scenario churn "+
			"replaying resize→migrate→defrag mid-serving; downtime is modeled from copied bytes, so identical "+
			"configs emit identical tables at any parallelism",
		cells, sc.QPS, sc.Scenarios[len(sc.Scenarios)-1]))
	return res, nil
}
