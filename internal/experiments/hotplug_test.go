package experiments

import (
	"context"
	"testing"
)

// TestHotplugExperimentQuick runs the quick sweep (one feasible one-node
// grow on an idle socket) and requires every hot-add check to pass.
func TestHotplugExperimentQuick(t *testing.T) {
	cfg := Config{Hotplug: QuickHotplugConfig()}
	r, err := hotplugExp{}.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(r.Rows))
	}
	for _, c := range r.Checks {
		if !c.Pass {
			t.Errorf("check %q failed: %s", c.Name, c.Detail)
		}
	}
	if v, err := r.Scalar("total_nodes_adopted"); err != nil || v != 1 {
		t.Errorf("total_nodes_adopted = %v (%v), want 1", v, err)
	}
	if v, err := r.Scalar("refusal_rate"); err != nil || v != 0 {
		t.Errorf("refusal_rate = %v (%v), want 0", v, err)
	}
}

// TestHotplugExperimentDefault runs the full sweep, which includes a
// contended cell whose growth must be refused and rolled back.
func TestHotplugExperimentDefault(t *testing.T) {
	r, err := hotplugExp{}.Run(context.Background(), Config{Pool: NewPool(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	for _, c := range r.Checks {
		if !c.Pass {
			t.Errorf("check %q failed: %s", c.Name, c.Detail)
		}
	}
	// target=192MiB pressure=1 needs two nodes with only one free: refused.
	if v, err := r.Scalar("refusal_rate"); err != nil || v != 0.25 {
		t.Errorf("refusal_rate = %v (%v), want 0.25", v, err)
	}
}
