package experiments

import (
	"bytes"
	"context"
	"testing"
)

func quickMatrixConfig() Config {
	return Config{Matrix: QuickMitigationMatrixConfig()}
}

// TestMitigationMatrixRows: the matrix must carry one row per defense kind
// with a vulnerable baseline and containing defenses — the head-to-head
// comparison the framework exists to produce.
func TestMitigationMatrixRows(t *testing.T) {
	r, err := mitigationMatrixExp{}.Run(context.Background(), quickMatrixConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 4 {
		t.Fatalf("matrix has %d rows, want >= 4 (none + at least three defenses)", len(r.Rows))
	}
	for _, c := range r.Checks {
		if !c.Pass {
			t.Errorf("check %s failed: %s", c.Name, c.Detail)
		}
	}
	base, err := r.Scalar("matrix_escapes_none")
	if err != nil {
		t.Fatal(err)
	}
	if base == 0 {
		t.Error("undefended row shows no escapes; matrix has no baseline signal")
	}
	for _, k := range []string{"para", "silver-bullet", "catt", "siloz"} {
		v, err := r.Scalar("matrix_escapes_" + k)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Errorf("%s row shows %v escapes, want 0", k, v)
		}
	}
}

// TestMitigationMatrixParallelDeterminism: the matrix renders byte-identical
// text and JSON on a width-1 and a width-8 pool — the guarantee that lets
// its kind x rep cells fan out.
func TestMitigationMatrixParallelDeterminism(t *testing.T) {
	cfg := quickMatrixConfig()
	names := []string{"mitigation-matrix"}
	text1, js1 := renderRun(t, names, cfg, 1)
	text8, js8 := renderRun(t, names, cfg, 8)
	if text1 != text8 {
		t.Errorf("text output differs between -parallel 1 and -parallel 8:\n--- width 1 ---\n%s\n--- width 8 ---\n%s", text1, text8)
	}
	if !bytes.Equal(js1, js8) {
		t.Errorf("JSON output differs between -parallel 1 and -parallel 8")
	}
}
