package experiments

import (
	"context"
	"fmt"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/migrate"
	"repro/internal/numa"
)

// EPTRelocConfig parameterizes the "ept-relocation" experiment: after one or
// more cross-socket live migrations, are a VM's EPT tables rebuilt inside the
// destination socket's protected pool, is the source pool's capacity given
// back, and does the relocated block still resist the §7.1 in-block hammering
// attack?
type EPTRelocConfig struct {
	// Geometry of the simulated server; zero value = the two-socket lab box
	// the migration studies use.
	Geometry geometry.Geometry
	// Moves are the cross-socket migration counts swept. Odd counts leave
	// the VM (and its tables) on socket 1, even counts ping-pong it home.
	Moves []int
	// Modes are the EPT integrity modes swept. Guard rows exercise the
	// guard-protected EPT block (§5.4); SecureEPT exercises per-entry MAC
	// recomputation across the relocation.
	Modes []ept.IntegrityMode
	// Seed drives the guest's payload and dirtying pattern.
	Seed int64
}

// DefaultEPTRelocConfig sweeps one to three migrations under both protection
// modes.
func DefaultEPTRelocConfig() EPTRelocConfig {
	return EPTRelocConfig{
		Moves: []int{1, 2, 3},
		Modes: []ept.IntegrityMode{ept.GuardRows, ept.SecureEPT},
		Seed:  23,
	}
}

// QuickEPTRelocConfig trims the sweep for smoke runs.
func QuickEPTRelocConfig() EPTRelocConfig {
	cfg := DefaultEPTRelocConfig()
	cfg.Moves = []int{1}
	return cfg
}

// eptRelocProfile is the lab DIMM for the relocation study: transforms
// stripped so subarray groups form without padding, every row fully
// vulnerable and dense with weak cells so the hammering phase is
// deterministic rather than probabilistic.
func eptRelocProfile() dram.Profile {
	p := dram.ProfileF()
	p.Transforms = addr.TransformConfig{}
	p.VulnerableRowFraction = 1
	p.WeakCellsPerRow = 600
	p.HammerThreshold = 5000
	return p
}

// eptRelocRun is one cell of the sweep.
type eptRelocRun struct {
	mode  ept.IntegrityMode
	moves int
}

func (r eptRelocRun) label() string {
	return fmt.Sprintf("%s moves=%d", eptModeName(r.mode), r.moves)
}

func eptModeName(m ept.IntegrityMode) string {
	switch m {
	case ept.GuardRows:
		return "guardrows"
	case ept.SecureEPT:
		return "secure-ept"
	default:
		return "none"
	}
}

// eptRelocRowResult is one completed cell, index-addressed for the pool.
type eptRelocRowResult struct {
	run eptRelocRun
	// RelocatedPages totals table pages rebuilt across all moves.
	relocatedPages int
	// reclaimedBytes totals source-pool bytes freed across all moves.
	reclaimedBytes uint64
	// relocatedEveryMove: each migration moved the full hierarchy (>= the
	// root, one PDPT and one PD page).
	relocatedEveryMove bool
	// sourceReclaimed: every socket the VM left has its EPT pool back at
	// its boot free-byte count, and reclaimed bytes match the page count.
	sourceReclaimed bool
	// auditOK: migrate.AuditIsolation passed after every move.
	auditOK bool
	// memoryIntact: the guest payload survived the whole sequence.
	memoryIntact bool
	// Guard-rows hammering phase (§7.1 against the NEW block).
	newBlockFlips  int
	controlFlips   int
	translationsOK bool
	// SecureEPT hammering phase: corrupted walks must fault, never
	// silently resolve differently.
	integrityFaults int
	silentCorrupt   int
}

// eptRelocDest picks enough unowned guest nodes on the target socket to
// hold the VM.
func eptRelocDest(h *core.Hypervisor, socket int, bytes uint64) ([]int, error) {
	var ids []int
	var capacity uint64
	for _, n := range h.Topology().NodesOnSocket(socket, numa.GuestReserved) {
		if _, owned := h.Registry().OwnerOf(n.ID); owned {
			continue
		}
		a, err := h.Allocator(n.ID)
		if err != nil {
			return nil, err
		}
		ids = append(ids, n.ID)
		capacity += a.FreeBytes()
		if capacity >= bytes {
			return ids, nil
		}
	}
	return nil, fmt.Errorf("experiments: socket %d cannot host %d bytes", socket, bytes)
}

// eptPoolFree snapshots each socket's EPT-pool free bytes (the EPT node
// under guard rows; relocation accounting under SecureEPT is validated
// through the migration reports instead, since tables then share the
// host-reserved pool).
func eptPoolFree(h *core.Hypervisor) (map[int]uint64, error) {
	out := map[int]uint64{}
	for _, n := range h.Topology().NodesOfKind(numa.EPTReserved) {
		a, err := h.Allocator(n.ID)
		if err != nil {
			return nil, err
		}
		out[n.Socket] = a.FreeBytes()
	}
	return out, nil
}

// runEPTReloc executes one cell: boot, migrate cross-socket `moves` times,
// then re-run the §7.1 hammering attack against the relocated tables.
func runEPTReloc(cfg EPTRelocConfig, run eptRelocRun, seed int64) (eptRelocRowResult, error) {
	res := eptRelocRowResult{run: run}
	g := cfg.Geometry
	if g.Sockets == 0 {
		g = migrationLabGeometry()
	}
	h, err := core.Boot(core.Config{
		Geometry:      g,
		Profiles:      []dram.Profile{eptRelocProfile()},
		EPTProtection: run.mode,
	}, core.ModeSiloz)
	if err != nil {
		return res, err
	}
	bootFree, err := eptPoolFree(h)
	if err != nil {
		return res, err
	}
	vm, err := h.CreateVM(core.Process{KVMPrivileged: true}, core.VMSpec{
		Name: "reloc", Socket: 0, MemoryBytes: 64 * geometry.MiB,
	})
	if err != nil {
		return res, err
	}
	payload := byte(seed)
	if err := vm.WriteGuest(4321, []byte{payload}); err != nil {
		return res, err
	}

	res.relocatedEveryMove = true
	res.auditOK = true
	for m := 0; m < run.moves; m++ {
		target := 1 - vm.EPTSocket()
		dests, err := eptRelocDest(h, target, vm.Spec().MemoryBytes)
		if err != nil {
			return res, err
		}
		rep, err := h.MigrateVM(context.Background(), "reloc", dests, core.MigrateOptions{
			MaxRounds: 8,
			StopPages: 8,
			GuestStep: func(round int) error {
				return vm.WriteGuest(uint64(round)*geometry.PageSize2M, []byte{byte(round)})
			},
		})
		if err != nil {
			return res, err
		}
		res.relocatedPages += rep.EPTRelocatedPages
		res.reclaimedBytes += rep.EPTReclaimedBytes
		// The 64 MiB hierarchy is at least root + PDPT + PD.
		if rep.EPTRelocatedPages < 3 {
			res.relocatedEveryMove = false
		}
		if err := migrate.AuditIsolation(h); err != nil {
			res.auditOK = false
		}
	}

	final := vm.EPTSocket()
	res.sourceReclaimed = res.reclaimedBytes == uint64(res.relocatedPages)*geometry.PageSize4K
	if run.mode == ept.GuardRows {
		now, err := eptPoolFree(h)
		if err != nil {
			return res, err
		}
		for socket, free := range bootFree {
			if socket != final && now[socket] != free {
				res.sourceReclaimed = false
			}
		}
	}
	buf := make([]byte, 1)
	if err := vm.ReadGuest(4321, buf); err == nil && buf[0] == payload {
		res.memoryIntact = true
	}

	// §7.1 re-run against the block the tables now live in.
	before := make(map[uint64]uint64)
	for gpa := uint64(0); gpa < vm.Spec().MemoryBytes; gpa += geometry.PageSize2M {
		hpa, err := vm.TranslateUncached(gpa)
		if err != nil {
			return res, err
		}
		before[gpa] = hpa
	}
	mem := h.Memory()
	acts := int(eptRelocProfile().HammerThreshold) * 4
	switch run.mode {
	case ept.GuardRows:
		// Hammer the closest allocatable rows around the destination
		// socket's 32-row EPT block, plus an unprotected control row in
		// the same bank so a flip-free result is non-vacuous.
		eptNode, err := h.EPTNode(final)
		if err != nil {
			return res, err
		}
		ma, err := mem.Mapper().Decode(eptNode.Ranges[0].Start)
		if err != nil {
			return res, err
		}
		for _, row := range []int{core.EPTBlockRowGroups, core.EPTBlockRowGroups + 1} {
			pa, err := mem.Mapper().Encode(geometry.MediaAddr{Bank: ma.Bank, Row: row, Col: 0})
			if err != nil {
				return res, err
			}
			if err := mem.ActivatePhys(pa, acts, 0); err != nil {
				return res, err
			}
		}
		mem.Refresh()
		ctrlPA, err := mem.Mapper().Encode(geometry.MediaAddr{Bank: ma.Bank, Row: 40, Col: 0})
		if err != nil {
			return res, err
		}
		if err := mem.ActivatePhys(ctrlPA, acts, 0); err != nil {
			return res, err
		}
		mem.Refresh()
		for _, f := range mem.Flips() {
			if f.Bank.Socket != final {
				continue
			}
			if f.MediaRow == core.EPTRowGroupOffset {
				res.newBlockFlips++
			}
			if f.MediaRow >= core.EPTBlockRowGroups {
				res.controlFlips++
			}
		}
		res.translationsOK = true
		for gpa, want := range before {
			hpa, err := vm.TranslateUncached(gpa)
			if err != nil || hpa != want {
				res.translationsOK = false
				break
			}
		}
	case ept.SecureEPT:
		// The relocated tables live in ordinary host rows; hammer the
		// relocated PD's neighbours and require every corrupted walk to
		// fault on the freshly-minted MACs rather than resolve silently.
		pd := vm.Tables().Pages()[2] // root, PDPT, PD
		ma, err := mem.Mapper().Decode(pd)
		if err != nil {
			return res, err
		}
		for _, row := range []int{ma.Row - 1, ma.Row + 1} {
			if row < 0 || row >= g.RowsPerBank {
				continue
			}
			pa, err := mem.Mapper().Encode(geometry.MediaAddr{Bank: ma.Bank, Row: row, Col: 0})
			if err != nil {
				return res, err
			}
			if err := mem.ActivatePhys(pa, acts, 0); err != nil {
				return res, err
			}
		}
		mem.Refresh()
		res.translationsOK = true
		for gpa, want := range before {
			hpa, err := vm.TranslateUncached(gpa)
			switch {
			case err != nil:
				res.integrityFaults++
			case hpa != want:
				res.silentCorrupt++
			}
		}
	}
	return res, nil
}

// eptRelocExp is the "ept-relocation" experiment.
type eptRelocExp struct{}

func (eptRelocExp) Name() string { return "ept-relocation" }

func (eptRelocExp) Run(ctx context.Context, cfg Config) (*Result, error) {
	rc := cfg.EPTReloc
	if len(rc.Moves) == 0 || len(rc.Modes) == 0 {
		def := DefaultEPTRelocConfig()
		if len(rc.Moves) == 0 {
			rc.Moves = def.Moves
		}
		if len(rc.Modes) == 0 {
			rc.Modes = def.Modes
		}
		if rc.Seed == 0 {
			rc.Seed = def.Seed
		}
	}
	var runs []eptRelocRun
	for _, mode := range rc.Modes {
		for _, moves := range rc.Moves {
			runs = append(runs, eptRelocRun{mode: mode, moves: moves})
		}
	}
	results := make([]eptRelocRowResult, len(runs))
	if err := cfg.Pool.Map(ctx, len(runs), func(i int) error {
		var err error
		results[i], err = runEPTReloc(rc, runs[i], repSeed(rc.Seed, i))
		return err
	}); err != nil {
		return nil, err
	}

	r := &Result{
		Name:  "ept-relocation",
		Title: "EPT-table relocation across sockets (§5.4 pool placement, §7.1 re-run)",
		Columns: []string{
			"moves", "relocated pages", "reclaimed", "new-block flips",
			"control flips", "integrity faults", "intact",
		},
		Units:    []string{"", "", "KiB", "", "", "", ""},
		Metadata: map[string]string{"profile": eptRelocProfile().Name, "vm": "64 MiB"},
	}
	allRelocated, allReclaimed, allAudited, allIntact := true, true, true, true
	guardFlipFree, guardControl, secureDetected := true, false, true
	var totalPages int
	var totalBytes uint64
	var totalNewFlips, totalFaults int
	for _, res := range results {
		r.Rows = append(r.Rows, Row{Label: res.run.label(), Cells: []any{
			res.run.moves, res.relocatedPages, res.reclaimedBytes / geometry.KiB,
			res.newBlockFlips, res.controlFlips, res.integrityFaults,
			res.memoryIntact && res.translationsOK,
		}})
		totalPages += res.relocatedPages
		totalBytes += res.reclaimedBytes
		totalNewFlips += res.newBlockFlips
		totalFaults += res.integrityFaults
		allRelocated = allRelocated && res.relocatedEveryMove
		allReclaimed = allReclaimed && res.sourceReclaimed
		allAudited = allAudited && res.auditOK
		allIntact = allIntact && res.memoryIntact
		switch res.run.mode {
		case ept.GuardRows:
			guardFlipFree = guardFlipFree && res.newBlockFlips == 0 && res.translationsOK
			guardControl = guardControl || res.controlFlips > 0
		case ept.SecureEPT:
			secureDetected = secureDetected && res.integrityFaults > 0 && res.silentCorrupt == 0
		}
	}
	r.scalar("relocated_pages", float64(totalPages))
	r.scalar("reclaimed_bytes", float64(totalBytes))
	r.scalar("new_block_flips", float64(totalNewFlips))
	r.scalar("integrity_faults", float64(totalFaults))
	r.check("relocated_every_move", allRelocated,
		"every cross-socket migration rebuilt the full table hierarchy")
	r.check("source_ept_reclaimed", allReclaimed,
		"vacated sockets' EPT pools returned to their boot free-byte count")
	r.check("isolation_audited", allAudited,
		"migrate.AuditIsolation passed after every move")
	r.check("memory_intact", allIntact,
		"guest payload survived every migration sequence")
	r.check("new_block_flip_free", guardFlipFree,
		fmt.Sprintf("%d flips reached relocated guard-protected blocks; translations intact", totalNewFlips))
	r.check("control_rows_flipped", guardControl,
		"unprotected control rows flipped (hammering phase non-vacuous)")
	r.check("corruption_detected_not_silent", secureDetected,
		fmt.Sprintf("%d integrity faults on relocated SecureEPT tables, none silent", totalFaults))
	return r, nil
}
