package experiments

import (
	"context"
	"testing"
)

// TestMigrationExperiment runs the quick sweep and pins its invariants:
// every check passes (byte identity, idle zero-downtime, bounded
// stop-and-copy, isolation audits) and two runs render identical bytes.
func TestMigrationExperiment(t *testing.T) {
	cfg := Config{Migration: QuickMigrationConfig()}
	r, err := (migrationExp{}).Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("quick sweep produced %d rows, want 4 (2 modes x 2 rates)", len(r.Rows))
	}
	for _, c := range r.Checks {
		if !c.Pass {
			t.Errorf("check %s failed: %s", c.Name, c.Detail)
		}
	}
	r2, err := (migrationExp{}).Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if RenderText(r) != RenderText(r2) {
		t.Error("migration experiment is not deterministic across runs")
	}
}

// TestDefragRecoveryStudy pins the live §8.1 counterpart: admission fails
// on the fragmented socket, recovers after exactly the planned moves, and
// the buddy introspection sees the vacated node.
func TestDefragRecoveryStudy(t *testing.T) {
	rec, err := DefragRecoveryStudy(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rec.BeforeAdmitted {
		t.Error("pending VM admitted before rebalancing — scenario broken")
	}
	if !rec.AfterAdmitted {
		t.Error("pending VM still refused after rebalancing")
	}
	if rec.Moves < 1 {
		t.Errorf("recovery took %d moves, want >= 1", rec.Moves)
	}
	if rec.OrderBefore != -1 {
		t.Errorf("fragmented socket reports largest free order %d, want -1", rec.OrderBefore)
	}
	if rec.OrderAfter <= rec.OrderBefore {
		t.Errorf("rebalancing did not raise the largest free order: %d -> %d", rec.OrderBefore, rec.OrderAfter)
	}
	if rec.Histogram == "" || rec.Histogram == "none" {
		t.Errorf("post-rebalance histogram %q shows no free blocks", rec.Histogram)
	}
}
