# Development targets for the Siloz reproduction.

GO ?= go

.PHONY: all build vet fmt-check test test-short race race-quick bench bench-quick examples tools check verify clean

all: check

build:
	$(GO) build ./...

# Static analysis gate.
vet:
	$(GO) vet ./...

# gofmt cleanliness gate (gofmt -l prints misformatted files; any output
# fails the target).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Whole suite under the race detector (slow; the experiment scheduler's
# parallel fan-out is the interesting surface).
race:
	$(GO) test -race ./...

# Quick suite under the race detector: the scheduler, determinism and
# cancellation tests that exercise every parallel path, plus the
# balloon/resize/registry lifecycle tests that hammer the reservation paths
# from concurrent VMs.
race-quick:
	$(GO) test -race -run 'TestParallelDeterminism|TestRunAll|TestPoolMap|TestCancellation|TestRepSeed|TestRegistry|TestRenderers' ./internal/experiments
	$(GO) test -race -run 'TestConcurrentBalloonLifecycle|TestConcurrentResizeGrowShrink' ./internal/core
	$(GO) test -race -run 'TestConcurrentExpandShrinkExclusive' ./internal/numa
	$(GO) test -race -run 'TestEPTRelocationProperty' ./internal/migrate

# Full benchmark sweep: every table/figure plus per-substrate microbenches.
bench:
	$(GO) test -bench=. -benchmem ./...

bench-quick:
	$(GO) run ./cmd/siloz-bench -quick

# Regenerate the paper's evaluation at full scale (minutes).
evaluation:
	$(GO) run ./cmd/siloz-bench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multitenant
	$(GO) run ./examples/eptguard
	$(GO) run ./examples/addressing
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/migration

tools:
	$(GO) run ./cmd/siloz-topology
	$(GO) run ./cmd/siloz-blacksmith -patterns 20
	$(GO) run ./cmd/siloz-infer -true-size 1024
	$(GO) run ./cmd/siloz-sim

check: build vet fmt-check test

# Pre-commit gate: everything `check` runs, as one target.
verify: build vet fmt-check test

clean:
	$(GO) clean ./...
