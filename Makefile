# Development targets for the Siloz reproduction.

GO ?= go

.PHONY: all build vet fmt-check test test-short race race-quick bench bench-micro bench-check bench-quick examples tools check verify clean

all: check

build:
	$(GO) build ./...

# Static analysis gate.
vet:
	$(GO) vet ./...

# gofmt cleanliness gate (gofmt -l prints misformatted files; any output
# fails the target).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Whole suite under the race detector (slow; the experiment scheduler's
# parallel fan-out is the interesting surface).
race:
	$(GO) test -race ./...

# Quick suite under the race detector: the scheduler, determinism and
# cancellation tests that exercise every parallel path, plus the
# balloon/resize/registry lifecycle tests that hammer the reservation paths
# from concurrent VMs.
race-quick:
	$(GO) test -race -run 'TestParallelDeterminism|TestRunAll|TestPoolMap|TestCancellation|TestRepSeed|TestRegistry|TestRenderers' ./internal/experiments
	$(GO) test -race -run 'TestConcurrentBalloonLifecycle|TestConcurrentResizeGrowShrink|TestConcurrentHammerResize|TestConcurrentMitigationHammerResize' ./internal/core
	$(GO) test -race -run 'TestConcurrentExpandShrinkExclusive' ./internal/numa
	$(GO) test -race -run 'TestEPTRelocationProperty' ./internal/migrate
	$(GO) test -race -run 'TestConcurrentFleetChurn' ./internal/fleet
	$(GO) test -race -run 'TestGenerateEarlyStopDeterminism' ./internal/workload
	$(GO) test -race -run 'TestConcurrentServeResize|TestServeFleetMoveChurn' ./internal/serve

# Packages with substrate microbenchmarks (address decode, the memory
# controller, the DRAM module) — the hot paths the BENCH_*.json baseline
# tracks. The registry benches in the repo root ride along.
BENCH_PKGS := ./internal/addr ./internal/memctrl ./internal/dram ./internal/rowcount ./internal/fleet ./internal/mitigation ./internal/serve
BENCH_DATE := $(shell date +%F)
# Latest committed baseline by date-sorted filename.
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))

# Full benchmark sweep: every table/figure plus per-substrate microbenches,
# captured into a dated JSON baseline (min ns/op across -count runs).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -count=3 ./... | $(GO) run ./cmd/siloz-perf -o BENCH_$(BENCH_DATE).json

# Microbench-only capture: the substrate hot paths, quick enough to run on
# every perf-relevant change.
bench-micro:
	$(GO) test -run '^$$' -bench=. -benchmem -count=3 $(BENCH_PKGS) | $(GO) run ./cmd/siloz-perf -o BENCH_$(BENCH_DATE).json

# Regression gate: rerun the microbenches and fail on >20% ns/op slowdown
# against the newest committed BENCH_*.json.
bench-check:
	$(GO) test -run '^$$' -bench=. -benchmem -count=2 $(BENCH_PKGS) | $(GO) run ./cmd/siloz-perf -check $(BENCH_BASELINE) -tolerance 20

bench-quick:
	$(GO) run ./cmd/siloz-bench -quick

# Regenerate the paper's evaluation at full scale (minutes).
evaluation:
	$(GO) run ./cmd/siloz-bench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multitenant
	$(GO) run ./examples/eptguard
	$(GO) run ./examples/addressing
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/migration
	$(GO) run ./examples/lifecycleattack

tools:
	$(GO) run ./cmd/siloz-topology
	$(GO) run ./cmd/siloz-blacksmith -patterns 20
	$(GO) run ./cmd/siloz-infer -true-size 1024
	$(GO) run ./cmd/siloz-sim

check: build vet fmt-check test

# Pre-commit gate: everything `check` runs, plus quick fleet-churn,
# lifecycle-attack, mitigation-matrix and serving-slo end-to-end smokes
# through the real CLIs.
verify: build vet fmt-check test
	$(GO) run ./cmd/siloz-fleet -quick >/dev/null
	$(GO) run ./cmd/siloz-bench -exp lifecycle-attack -quick >/dev/null
	$(GO) run ./cmd/siloz-bench -exp mitigation-matrix -quick >/dev/null
	$(GO) run ./cmd/siloz-serve -quick >/dev/null

clean:
	$(GO) clean ./...
