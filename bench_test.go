// Benchmarks regenerating the paper's tables and figures (§7). Each bench
// dispatches one experiment from the registry end to end and reports the
// headline quantity from the structured Result's scalars, so
// `go test -bench=. -benchmem` reproduces the whole evaluation. Scaled-down
// parameters keep a full sweep tractable; use cmd/siloz-bench for
// paper-scale runs.
package repro_test

import (
	"context"
	"testing"

	"repro/internal/experiments"
	"repro/internal/geometry"
)

// benchSecurity uses a reduced geometry so each b.N iteration is cheap
// while keeping the full six-DIMM sweep.
func benchSecurity() experiments.SecurityConfig {
	cfg := experiments.DefaultSecurityConfig()
	cfg.Geometry = geometry.Geometry{
		Sockets: 2, CoresPerSocket: 8, DIMMsPerSocket: 2, RanksPerDIMM: 2,
		BanksPerRank: 4, RowsPerBank: 4096, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
	cfg.Patterns = 30
	return cfg
}

func benchPerf() experiments.PerfConfig {
	cfg := experiments.QuickPerfConfig()
	cfg.Ops = 20_000
	cfg.Reps = 3
	return cfg
}

func benchConfig() experiments.Config {
	return experiments.Config{
		Perf:     benchPerf(),
		Security: benchSecurity(),
	}
}

// runExp dispatches one registered experiment, failing the benchmark if it
// errors or any of its self-checks fail.
func runExp(b *testing.B, name string, cfg experiments.Config) *experiments.Result {
	b.Helper()
	e, ok := experiments.Get(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	r, err := e.Run(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if !r.Passed() {
		for _, c := range r.Checks {
			if !c.Pass {
				b.Fatalf("%s: check %s failed: %s", name, c.Name, c.Detail)
			}
		}
	}
	return r
}

// scalar reads a headline metric out of the Result.
func scalar(b *testing.B, r *experiments.Result, name string) float64 {
	b.Helper()
	v, err := r.Scalar(name)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// BenchmarkTable3Containment regenerates Table 3: Blacksmith pinned to a
// subarray group on DIMMs A-F; flips inside vs outside the group.
func BenchmarkTable3Containment(b *testing.B) {
	cfg := benchConfig()
	var inside, outside float64
	for i := 0; i < b.N; i++ {
		cfg.Security.Seed = int64(i) + 7
		r := runExp(b, "table3", cfg)
		inside = scalar(b, r, "flips_inside")
		outside = scalar(b, r, "flips_outside")
	}
	b.ReportMetric(inside, "flips-inside")
	b.ReportMetric(outside, "flips-outside")
}

// BenchmarkEPTProtection regenerates the §7.1 EPT experiment.
func BenchmarkEPTProtection(b *testing.B) {
	cfg := benchConfig()
	var prot, unprot float64
	for i := 0; i < b.N; i++ {
		r := runExp(b, "ept", cfg)
		prot = scalar(b, r, "protected_flips")
		unprot = scalar(b, r, "unprotected_flips")
	}
	b.ReportMetric(prot, "protected-flips")
	b.ReportMetric(unprot, "unprotected-flips")
}

// BenchmarkFig4ExecutionTime regenerates Figure 4.
func BenchmarkFig4ExecutionTime(b *testing.B) {
	cfg := benchConfig()
	var geomean float64
	for i := 0; i < b.N; i++ {
		cfg.Perf.Seed = int64(i) + 1
		geomean = scalar(b, runExp(b, "fig4", cfg), "geomean_overhead_pct")
	}
	b.ReportMetric(geomean, "geomean-overhead-%")
}

// BenchmarkFig5Throughput regenerates Figure 5.
func BenchmarkFig5Throughput(b *testing.B) {
	cfg := benchConfig()
	var geomean float64
	for i := 0; i < b.N; i++ {
		cfg.Perf.Seed = int64(i) + 1
		geomean = scalar(b, runExp(b, "fig5", cfg), "geomean_overhead_pct")
	}
	b.ReportMetric(geomean, "geomean-overhead-%")
}

// BenchmarkFig67SizeSensitivity regenerates Figures 6 and 7 (execution time
// and throughput for Siloz-512/-2048 vs Siloz-1024).
func BenchmarkFig67SizeSensitivity(b *testing.B) {
	cfg := benchConfig()
	var t512, t2048, p512, p2048 float64
	for i := 0; i < b.N; i++ {
		cfg.Perf.Seed = int64(i) + 1
		r := runExp(b, "fig67", cfg)
		t512 = scalar(b, r, "fig6-siloz512_geomean_pct")
		t2048 = scalar(b, r, "fig6-siloz2048_geomean_pct")
		p512 = scalar(b, r, "fig7-siloz512_geomean_pct")
		p2048 = scalar(b, r, "fig7-siloz2048_geomean_pct")
	}
	b.ReportMetric(t512, "time-siloz512-overhead-%")
	b.ReportMetric(t2048, "time-siloz2048-overhead-%")
	b.ReportMetric(p512, "tput-siloz512-overhead-%")
	b.ReportMetric(p2048, "tput-siloz2048-overhead-%")
}

// BenchmarkBankLevelParallelism regenerates the §4.1 ablation.
func BenchmarkBankLevelParallelism(b *testing.B) {
	cfg := benchConfig()
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = scalar(b, runExp(b, "blp", cfg), "blp_benefit_pct")
	}
	b.ReportMetric(speedup, "blp-benefit-%")
}

// BenchmarkGuardRowOverhead regenerates the §3/§5.4 reservation accounting.
func BenchmarkGuardRowOverhead(b *testing.B) {
	cfg := benchConfig()
	var siloz float64
	for i := 0; i < b.N; i++ {
		siloz = scalar(b, runExp(b, "overhead", cfg), "siloz_ept_reserved_pct")
	}
	b.ReportMetric(siloz, "siloz-reserved-%")
}

// BenchmarkSoftwareRefresh regenerates the §8.3 deadline experiment.
func BenchmarkSoftwareRefresh(b *testing.B) {
	cfg := benchConfig()
	var taskMiss, tickMiss float64
	for i := 0; i < b.N; i++ {
		r := runExp(b, "softrefresh", cfg)
		taskMiss = scalar(b, r, "task_miss_rate")
		tickMiss = scalar(b, r, "tick_miss_rate")
	}
	b.ReportMetric(100*taskMiss, "task-miss-%")
	b.ReportMetric(100*tickMiss, "tick-miss-%")
}

// BenchmarkRemapHandling regenerates the §6 sweep.
func BenchmarkRemapHandling(b *testing.B) {
	cfg := benchConfig()
	var maxReserved float64
	for i := 0; i < b.N; i++ {
		maxReserved = scalar(b, runExp(b, "remaps", cfg), "max_reserved_pct")
	}
	b.ReportMetric(maxReserved, "max-reserved-%")
}

// BenchmarkGiBPages regenerates the §4.2 1 GiB page analysis.
func BenchmarkGiBPages(b *testing.B) {
	cfg := benchConfig()
	cfg.Perf.Geometry = geometry.Default()
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = scalar(b, runExp(b, "gbpages", cfg), "single_set_fraction")
	}
	b.ReportMetric(100*frac, "single-set-%")
}

// BenchmarkECCStudy regenerates the §2.5/§3 ECC analysis.
func BenchmarkECCStudy(b *testing.B) {
	cfg := benchConfig()
	var corrected, uncorrectable float64
	for i := 0; i < b.N; i++ {
		r := runExp(b, "ecc", cfg)
		corrected = scalar(b, r, "words_corrected")
		uncorrectable = scalar(b, r, "words_uncorrectable")
	}
	b.ReportMetric(corrected, "corrected-words")
	b.ReportMetric(uncorrectable, "uncorrectable-words")
}

// BenchmarkFragmentation regenerates the §8.1 provisioning-waste study.
func BenchmarkFragmentation(b *testing.B) {
	cfg := benchConfig()
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = scalar(b, runExp(b, "fragmentation", cfg), "worst_waste_pct")
	}
	b.ReportMetric(worst, "worst-waste-%")
}

// BenchmarkDDR5Comparison regenerates the §8.2 DDR4-vs-DDR5 sweep.
func BenchmarkDDR5Comparison(b *testing.B) {
	cfg := benchConfig()
	var ddr4Max float64
	for i := 0; i < b.N; i++ {
		ddr4Max = scalar(b, runExp(b, "ddr5", cfg), "ddr4_max_reserved_pct")
	}
	b.ReportMetric(ddr4Max, "ddr4-max-reserved-%")
}

// BenchmarkDRAMAStudy regenerates the §8.4 timing-side-channel study.
func BenchmarkDRAMAStudy(b *testing.B) {
	cfg := benchConfig()
	var sharedSignal, partSignal float64
	for i := 0; i < b.N; i++ {
		r := runExp(b, "drama", cfg)
		sharedSignal = scalar(b, r, "shared_signal_pct")
		partSignal = scalar(b, r, "partitioned_signal_pct")
	}
	b.ReportMetric(sharedSignal, "shared-signal-%")
	b.ReportMetric(partSignal, "partitioned-signal-%")
}

// BenchmarkActivationRates regenerates the §1 activation-rate study.
func BenchmarkActivationRates(b *testing.B) {
	cfg := benchConfig()
	cfg.Perf = experiments.QuickPerfConfig()
	var hammerPeak float64
	for i := 0; i < b.N; i++ {
		hammerPeak = scalar(b, runExp(b, "actrates", cfg), "hammer_peak_acts")
	}
	b.ReportMetric(hammerPeak, "hammer-peak-acts")
}

// BenchmarkZebRAMComparison regenerates the §3 executable guard-row
// comparison.
func BenchmarkZebRAMComparison(b *testing.B) {
	cfg := benchConfig()
	var silozOverhead float64
	for i := 0; i < b.N; i++ {
		silozOverhead = scalar(b, runExp(b, "zebram", cfg), "siloz_overhead_pct")
	}
	b.ReportMetric(silozOverhead, "siloz-overhead-%")
}

// BenchmarkSecuritySweep runs the whole §7.1 security battery — Table 3
// containment, EPT protection, and activation rates — end to end per
// iteration. This is the registry-level trajectory number the sharded
// campaign driver and the memctrl/addr hot-path rewrites are measured by.
func BenchmarkSecuritySweep(b *testing.B) {
	cfg := benchConfig()
	var outside float64
	for i := 0; i < b.N; i++ {
		cfg.Security.Seed = int64(i) + 7
		outside = scalar(b, runExp(b, "table3", cfg), "flips_outside")
		runExp(b, "ept", cfg)
		runExp(b, "actrates", cfg)
	}
	b.ReportMetric(outside, "flips-outside")
}
