// Benchmarks regenerating the paper's tables and figures (§7). Each bench
// runs one experiment end to end and reports the headline quantity as a
// custom metric, so `go test -bench=. -benchmem` reproduces the whole
// evaluation. Scaled-down parameters keep a full sweep tractable; use
// cmd/siloz-bench for paper-scale runs.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/geometry"
)

// benchSecurity uses a reduced geometry so each b.N iteration is cheap
// while keeping the full six-DIMM sweep.
func benchSecurity() experiments.SecurityConfig {
	cfg := experiments.DefaultSecurityConfig()
	cfg.Geometry = geometry.Geometry{
		Sockets: 2, CoresPerSocket: 8, DIMMsPerSocket: 2, RanksPerDIMM: 2,
		BanksPerRank: 4, RowsPerBank: 4096, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
	cfg.Patterns = 30
	return cfg
}

func benchPerf() experiments.PerfConfig {
	cfg := experiments.QuickPerfConfig()
	cfg.Ops = 20_000
	cfg.Reps = 3
	return cfg
}

// BenchmarkTable3Containment regenerates Table 3: Blacksmith pinned to a
// subarray group on DIMMs A-F; flips inside vs outside the group.
func BenchmarkTable3Containment(b *testing.B) {
	cfg := benchSecurity()
	var inside, outside int
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i) + 7
		res, err := experiments.Table3Containment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		inside, outside = 0, 0
		for _, r := range res.Rows {
			inside += r.FlipsInside
			outside += r.FlipsOutside
		}
		if !res.Contained() {
			b.Fatalf("containment violated: %d flips escaped", outside)
		}
	}
	b.ReportMetric(float64(inside), "flips-inside")
	b.ReportMetric(float64(outside), "flips-outside")
}

// BenchmarkEPTProtection regenerates the §7.1 EPT experiment.
func BenchmarkEPTProtection(b *testing.B) {
	cfg := benchSecurity()
	var prot, unprot int
	for i := 0; i < b.N; i++ {
		res, err := experiments.EPTProtection(cfg)
		if err != nil {
			b.Fatal(err)
		}
		prot, unprot = res.ProtectedFlips, res.UnprotectedFlips
		if prot != 0 {
			b.Fatalf("protected rows flipped %d times", prot)
		}
	}
	b.ReportMetric(float64(prot), "protected-flips")
	b.ReportMetric(float64(unprot), "unprotected-flips")
}

// BenchmarkFig4ExecutionTime regenerates Figure 4.
func BenchmarkFig4ExecutionTime(b *testing.B) {
	cfg := benchPerf()
	var geomean float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i) + 1
		fig, err := experiments.Fig4ExecutionTime(cfg)
		if err != nil {
			b.Fatal(err)
		}
		geomean = fig.GeomeanPct
		if !fig.WithinHalfPercent() {
			b.Fatalf("geomean overhead %.2f%% outside ±0.5%%", geomean)
		}
	}
	b.ReportMetric(geomean, "geomean-overhead-%")
}

// BenchmarkFig5Throughput regenerates Figure 5.
func BenchmarkFig5Throughput(b *testing.B) {
	cfg := benchPerf()
	var geomean float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i) + 1
		fig, err := experiments.Fig5Throughput(cfg)
		if err != nil {
			b.Fatal(err)
		}
		geomean = fig.GeomeanPct
		if !fig.WithinHalfPercent() {
			b.Fatalf("geomean overhead %.2f%% outside ±0.5%%", geomean)
		}
	}
	b.ReportMetric(geomean, "geomean-overhead-%")
}

// BenchmarkFig6SizeSensitivityTime regenerates Figure 6 (execution time for
// Siloz-512/-2048 vs Siloz-1024).
func BenchmarkFig6SizeSensitivityTime(b *testing.B) {
	cfg := benchPerf()
	var g512, g2048 float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i) + 1
		res, err := experiments.Fig6And7SizeSensitivity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		g512, g2048 = res.Time512.GeomeanPct, res.Time2048.GeomeanPct
	}
	b.ReportMetric(g512, "siloz512-overhead-%")
	b.ReportMetric(g2048, "siloz2048-overhead-%")
}

// BenchmarkFig7SizeSensitivityTput regenerates Figure 7 (throughput for
// Siloz-512/-2048 vs Siloz-1024).
func BenchmarkFig7SizeSensitivityTput(b *testing.B) {
	cfg := benchPerf()
	var g512, g2048 float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i) + 1
		res, err := experiments.Fig6And7SizeSensitivity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		g512, g2048 = res.Tput512.GeomeanPct, res.Tput2048.GeomeanPct
	}
	b.ReportMetric(g512, "siloz512-overhead-%")
	b.ReportMetric(g2048, "siloz2048-overhead-%")
}

// BenchmarkBankLevelParallelism regenerates the §4.1 ablation.
func BenchmarkBankLevelParallelism(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.BankLevelParallelism(geometry.Default(), 60_000)
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.SpeedupPct
		if speedup < 18 {
			b.Fatalf("BLP benefit %.1f%% below the paper's 18%%", speedup)
		}
	}
	b.ReportMetric(speedup, "blp-benefit-%")
}

// BenchmarkGuardRowOverhead regenerates the §3/§5.4 reservation accounting.
func BenchmarkGuardRowOverhead(b *testing.B) {
	var siloz float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.OverheadComparison(geometry.Default()) {
			if r.Scheme == "Siloz EPT block (b=32)" {
				siloz = r.ReservedPct
			}
		}
	}
	b.ReportMetric(siloz, "siloz-reserved-%")
}

// BenchmarkSoftwareRefresh regenerates the §8.3 deadline experiment.
func BenchmarkSoftwareRefresh(b *testing.B) {
	var taskMiss, tickMiss float64
	for i := 0; i < b.N; i++ {
		task, tick := experiments.SoftRefreshComparison()
		taskMiss, tickMiss = task.MissRate(), tick.MissRate()
	}
	b.ReportMetric(100*taskMiss, "task-miss-%")
	b.ReportMetric(100*tickMiss, "tick-miss-%")
}

// BenchmarkRemapHandling regenerates the §6 sweep.
func BenchmarkRemapHandling(b *testing.B) {
	var maxReserved float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RemapHandling()
		if err != nil {
			b.Fatal(err)
		}
		maxReserved = 0
		for _, r := range rows {
			if r.ReservedPct > maxReserved {
				maxReserved = r.ReservedPct
			}
		}
	}
	b.ReportMetric(maxReserved, "max-reserved-%")
}

// BenchmarkGiBPages regenerates the §4.2 1 GiB page analysis.
func BenchmarkGiBPages(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.GiBPages(geometry.Default())
		if err != nil {
			b.Fatal(err)
		}
		frac = res.SingleSetFraction
	}
	b.ReportMetric(100*frac, "single-set-%")
}

// BenchmarkECCStudy regenerates the §2.5/§3 ECC analysis.
func BenchmarkECCStudy(b *testing.B) {
	var corrected, uncorrectable int
	for i := 0; i < b.N; i++ {
		res, err := experiments.ECCStudy()
		if err != nil {
			b.Fatal(err)
		}
		corrected, uncorrectable = res.WordsCorrected, res.WordsUncorrectable
		if !res.Leak {
			b.Fatal("side channel not demonstrated")
		}
	}
	b.ReportMetric(float64(corrected), "corrected-words")
	b.ReportMetric(float64(uncorrectable), "uncorrectable-words")
}

// BenchmarkFragmentation regenerates the §8.1 provisioning-waste study.
func BenchmarkFragmentation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FragmentationStudy()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.WastePct > worst {
				worst = r.WastePct
			}
		}
	}
	b.ReportMetric(worst, "worst-waste-%")
}

// BenchmarkDDR5Comparison regenerates the §8.2 DDR4-vs-DDR5 sweep.
func BenchmarkDDR5Comparison(b *testing.B) {
	var ddr4Max float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DDR5Comparison()
		if err != nil {
			b.Fatal(err)
		}
		ddr4Max = 0
		for _, r := range rows {
			if r.DDR5Reserved != 0 {
				b.Fatal("DDR5 should reserve nothing")
			}
			if r.DDR4Reserved > ddr4Max {
				ddr4Max = r.DDR4Reserved
			}
		}
	}
	b.ReportMetric(ddr4Max, "ddr4-max-reserved-%")
}

// BenchmarkDRAMAStudy regenerates the §8.4 timing-side-channel study.
func BenchmarkDRAMAStudy(b *testing.B) {
	var sharedSignal, partSignal float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DRAMAStudy()
		if err != nil {
			b.Fatal(err)
		}
		sharedSignal, partSignal = rows[0].SignalPct, rows[1].SignalPct
	}
	b.ReportMetric(sharedSignal, "shared-signal-%")
	b.ReportMetric(partSignal, "partitioned-signal-%")
}

// BenchmarkActivationRates regenerates the §1 activation-rate study.
func BenchmarkActivationRates(b *testing.B) {
	cfg := experiments.QuickPerfConfig()
	cfg.Ops = 250_000
	var hammerPeak int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ActivationRates(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "hammer-pair" {
				hammerPeak = r.PeakACTs
			}
		}
	}
	b.ReportMetric(float64(hammerPeak), "hammer-peak-acts")
}

// BenchmarkZebRAMComparison regenerates the §3 executable guard-row
// comparison.
func BenchmarkZebRAMComparison(b *testing.B) {
	var silozOverhead float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ZebRAMComparison()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "Siloz subarray groups (~0%)" {
				if !r.Safe {
					b.Fatal("subarray groups leaked")
				}
				silozOverhead = r.OverheadPct
			}
		}
	}
	b.ReportMetric(silozOverhead, "siloz-overhead-%")
}
