// Command siloz-topology boots Siloz on a simulated server and dumps the
// resulting DRAM isolation topology: subarray groups, logical NUMA nodes,
// the EPT row-group block, and offlined guard ranges (§5.2-5.4).
//
// Usage:
//
//	siloz-topology [-subarray-rows N] [-baseline] [-verbose]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/numa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("siloz-topology: ")
	subarrayRows := flag.Int("subarray-rows", 0, "rows per subarray boot parameter (0 = platform default of 1024)")
	baseline := flag.Bool("baseline", false, "boot the unmodified Linux/KVM baseline instead of Siloz")
	verbose := flag.Bool("verbose", false, "list every logical node")
	flag.Parse()

	mode := core.ModeSiloz
	if *baseline {
		mode = core.ModeBaseline
	}
	h, err := core.Boot(core.Config{
		SubarrayRows:  *subarrayRows,
		EPTProtection: ept.GuardRows,
	}, mode)
	if err != nil {
		log.Fatal(err)
	}

	g := h.Layout().Geometry()
	fmt.Printf("server:          %s\n", g)
	fmt.Printf("mode:            %s\n", h.Mode())
	fmt.Printf("managed group:   %d rows/subarray -> %.2f GiB subarray groups\n",
		h.Layout().RowsPerGroup(), float64(h.Layout().GroupBytes())/float64(geometry.GiB))
	fmt.Printf("groups/socket:   %d\n", h.Layout().GroupsPerSocket())
	if h.Layout().Artificial() {
		fmt.Println("artificial:      yes (non-power-of-two subarray size, §6)")
	}

	topo := h.Topology()
	counts := map[numa.NodeKind]int{}
	var bytes = map[numa.NodeKind]uint64{}
	for _, n := range topo.Nodes() {
		counts[n.Kind]++
		bytes[n.Kind] += n.Bytes()
	}
	fmt.Printf("logical nodes:   %d total (%d host, %d guest, %d ept)\n",
		len(topo.Nodes()), counts[numa.HostReserved], counts[numa.GuestReserved], counts[numa.EPTReserved])
	for _, k := range []numa.NodeKind{numa.HostReserved, numa.GuestReserved, numa.EPTReserved} {
		if counts[k] > 0 {
			fmt.Printf("  %-6s %4d nodes  %10.3f GiB\n", k, counts[k], float64(bytes[k])/float64(geometry.GiB))
		}
	}
	var offlined uint64
	for _, r := range h.OfflinedRanges() {
		offlined += r.Bytes()
	}
	fmt.Printf("offlined:        %.3f MiB (%.4f%% of DRAM) for EPT guard rows and isolation hazards\n",
		float64(offlined)/float64(geometry.MiB), 100*float64(offlined)/float64(g.TotalBytes()))

	if *verbose {
		fmt.Println()
		fmt.Printf("%-5s %-6s %-7s %-8s %-10s ranges\n", "node", "kind", "socket", "groups", "bytes")
		for _, n := range topo.Nodes() {
			fmt.Printf("%-5d %-6s %-7d %-8d %-10d", n.ID, n.Kind, n.Socket, len(n.Groups), n.Bytes())
			for i, r := range n.Ranges {
				if i == 4 {
					fmt.Printf(" ... (%d more)", len(n.Ranges)-4)
					break
				}
				fmt.Printf(" %v", r)
			}
			fmt.Println()
		}
	}
	os.Exit(0)
}
