// Command siloz-infer runs the mFIT-style subarray size inference of §4.1
// against a simulated DIMM: even without vendor cooperation, the true
// subarray size is revealed by the pattern of failed Rowhammer attacks at
// its multiples — the methodology Siloz's deployment relies on when DRAM
// vendors do not share subarray sizes.
//
// With -adjacency the command instead runs the attacker-side DRAMDig-style
// row-adjacency probe that precedes every lifecycle campaign: hammer a row
// believed to sit between two others and confirm the disturbance lands on
// exactly the predicted neighbors. Subarray-size inference needs boundary-
// spanning runs and is host-only; adjacency is what an in-VM attacker can
// confirm.
//
// The common flags are spelled as in every siloz command: -quick probes the
// minimum two boundaries per candidate, -ops overrides activations per
// aggressor, and
// -reps re-runs the inference on -parallel-pooled independent DIMMs (the
// size probe is deterministic, so -seed only varies -adjacency sampling).
//
// Usage:
//
//	siloz-infer [-true-size N] [-dimm A..F] [-adjacency] [-pairs N]
//	            [-quick] [-ops N] [-reps N] [-seed N] [-parallel N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/addr"
	"repro/internal/attack"
	"repro/internal/cliflags"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/geometry"
)

// infer builds a fresh simulated DIMM and runs one inference pass.
func infer(g geometry.Geometry, prof dram.Profile, cfg attack.InferenceConfig) (int, error) {
	mapper, err := addr.NewMapper(g, addr.KindSkylake)
	if err != nil {
		return 0, err
	}
	mem, err := dram.NewMemory(g, mapper, []dram.Profile{prof}, nil)
	if err != nil {
		return 0, err
	}
	target := &attack.PhysTarget{
		Mem:    mem,
		Ranges: []attack.PhysRange{{Start: 0, End: uint64(g.SocketBytes())}},
	}
	return attack.InferSubarraySize(target, cfg)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("siloz-infer: ")
	trueSize := flag.Int("true-size", 1024, "actual rows per subarray of the simulated DIMM")
	dimm := flag.String("dimm", "A", "DIMM profile (A-F)")
	adjacency := flag.Bool("adjacency", false, "run attacker-side row-adjacency inference instead of subarray size")
	pairs := flag.Int("pairs", 8, "aggressor triples to probe per rep in -adjacency mode")
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	var prof dram.Profile
	found := false
	for _, p := range dram.EvaluationProfiles() {
		if p.Name == *dimm {
			prof, found = p, true
		}
	}
	if !found {
		log.Fatalf("unknown DIMM %q", *dimm)
	}
	// Give the probe a fully-vulnerable part so every boundary probe is
	// conclusive (real mFIT retries more boundaries instead).
	prof.VulnerableRowFraction = 1

	g := geometry.Geometry{
		Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
		BanksPerRank: 8, RowsPerBank: 8192, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: *trueSize,
	}
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	if *adjacency {
		acts := int(4 * prof.HammerThreshold)
		if common.Ops > 0 {
			acts = common.Ops
		}
		reps := 1
		if common.Reps > 0 {
			reps = common.Reps
		}
		fmt.Printf("probing DIMM %s row adjacency (%d triples/rep, %d acts)...\n",
			prof.Name, *pairs, acts)
		reports := make([]*attack.AdjacencyReport, reps)
		pool := experiments.NewPool(common.Workers())
		err := pool.Map(context.Background(), reps, func(i int) error {
			mapper, err := addr.NewMapper(g, addr.KindSkylake)
			if err != nil {
				return err
			}
			mem, err := dram.NewMemory(g, mapper, []dram.Profile{prof}, nil)
			if err != nil {
				return err
			}
			target := &attack.PhysTarget{
				Mem:    mem,
				Ranges: []attack.PhysRange{{Start: 0, End: uint64(g.SocketBytes())}},
			}
			rep, err := attack.InferAdjacency(target, acts, *pairs, 0xAA, attack.CampaignSeed(common.Seed, i))
			if err != nil {
				return err
			}
			reports[i] = rep
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		confirmed := true
		for i, rep := range reports {
			fmt.Printf("rep %d: %d/%d neighbor pairs disturbed, row pitch %d\n",
				i, rep.Confirmed, rep.Probed, rep.RowPitch)
			confirmed = confirmed && rep.Confirmed > 0
		}
		if confirmed {
			fmt.Println("RESULT: adjacency confirmed — the mapping hypothesis places neighbors correctly")
		} else {
			fmt.Println("RESULT: adjacency NOT confirmed")
			os.Exit(1)
		}
		return
	}

	cfg := attack.DefaultInferenceConfig()
	if prof.TRRTableSize == 0 {
		cfg.Decoys = 0
	}
	if common.Quick {
		// Two probes is the floor: the inference demands at least two
		// conclusive boundary samples before accepting a candidate.
		cfg.ProbesPerCandidate = 2
	}
	if common.Ops > 0 {
		cfg.ActsPerAggressor = common.Ops
	}
	reps := 1
	if common.Reps > 0 {
		reps = common.Reps
	}

	fmt.Printf("probing DIMM %s (TRR table %d, threshold %.0f, transforms %+v)...\n",
		prof.Name, prof.TRRTableSize, prof.HammerThreshold, prof.Transforms)
	sizes := make([]int, reps)
	pool := experiments.NewPool(common.Workers())
	err := pool.Map(context.Background(), reps, func(i int) error {
		got, err := infer(g, prof, cfg)
		if err != nil {
			return err
		}
		sizes[i] = got
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	allCorrect := true
	for i, got := range sizes {
		fmt.Printf("rep %d inferred subarray size: %d rows (true: %d)\n", i, got, *trueSize)
		allCorrect = allCorrect && got == *trueSize
	}
	if allCorrect {
		fmt.Println("RESULT: correct — failed attacks observed at every multiple of the true size (§4.1)")
	} else {
		fmt.Println("RESULT: MISMATCH")
		os.Exit(1)
	}
}
