// Command siloz-infer runs the mFIT-style subarray size inference of §4.1
// against a simulated DIMM: even without vendor cooperation, the true
// subarray size is revealed by the pattern of failed Rowhammer attacks at
// its multiples — the methodology Siloz's deployment relies on when DRAM
// vendors do not share subarray sizes.
//
// Usage:
//
//	siloz-infer [-true-size N] [-dimm A..F]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/attack"
	"repro/internal/dram"
	"repro/internal/geometry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("siloz-infer: ")
	trueSize := flag.Int("true-size", 1024, "actual rows per subarray of the simulated DIMM")
	dimm := flag.String("dimm", "A", "DIMM profile (A-F)")
	flag.Parse()

	var prof dram.Profile
	found := false
	for _, p := range dram.EvaluationProfiles() {
		if p.Name == *dimm {
			prof, found = p, true
		}
	}
	if !found {
		log.Fatalf("unknown DIMM %q", *dimm)
	}
	// Give the probe a fully-vulnerable part so every boundary probe is
	// conclusive (real mFIT retries more boundaries instead).
	prof.VulnerableRowFraction = 1

	g := geometry.Geometry{
		Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
		BanksPerRank: 8, RowsPerBank: 8192, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: *trueSize,
	}
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	mapper, err := addr.NewSkylakeMapper(g)
	if err != nil {
		log.Fatal(err)
	}
	mem, err := dram.NewMemory(g, mapper, []dram.Profile{prof}, nil)
	if err != nil {
		log.Fatal(err)
	}
	target := &attack.PhysTarget{
		Mem:    mem,
		Ranges: []attack.PhysRange{{Start: 0, End: uint64(g.SocketBytes())}},
	}
	cfg := attack.DefaultInferenceConfig()
	if prof.TRRTableSize == 0 {
		cfg.Decoys = 0
	}
	fmt.Printf("probing DIMM %s (TRR table %d, threshold %.0f, transforms %+v)...\n",
		prof.Name, prof.TRRTableSize, prof.HammerThreshold, prof.Transforms)
	got, err := attack.InferSubarraySize(target, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inferred subarray size: %d rows (true: %d)\n", got, *trueSize)
	if got == *trueSize {
		fmt.Println("RESULT: correct — failed attacks observed at every multiple of the true size (§4.1)")
	} else {
		fmt.Println("RESULT: MISMATCH")
	}
}
