// Command siloz-audit boots a populated system, stresses it, and runs the
// hypervisor's fsck-style invariant audit plus a node-statistics report —
// the operational health check an operator would run against a Siloz host.
//
// Usage:
//
//	siloz-audit [-tenants N] [-vm-gib N] [-hammer]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("siloz-audit: ")
	tenants := flag.Int("tenants", 4, "tenant VMs to create")
	vmGiB := flag.Int("vm-gib", 3, "memory per tenant in GiB")
	hammer := flag.Bool("hammer", true, "hammer from every tenant before auditing")
	flag.Parse()

	h, err := core.Boot(core.Config{
		Profiles:      []dram.Profile{dram.ProfileD()},
		EPTProtection: ept.GuardRows,
		Log:           os.Stdout,
	}, core.ModeSiloz)
	if err != nil {
		log.Fatal(err)
	}
	proc := core.Process{CGroup: "kvm", KVMPrivileged: true}
	for i := 0; i < *tenants; i++ {
		socket := i % 2
		vm, err := h.CreateVM(proc, core.VMSpec{
			Name:   fmt.Sprintf("tenant%d", i),
			Socket: socket, MemoryBytes: uint64(*vmGiB) * geometry.GiB,
			VCPUs: 4, MediatedBytes: 64 * geometry.KiB,
		})
		if err != nil {
			log.Fatalf("tenant %d: %v", i, err)
		}
		if _, err := h.PinVCPUs(vm); err != nil {
			log.Fatalf("pinning tenant %d: %v", i, err)
		}
		if *hammer {
			if err := vm.Hammer(0, 20_000, 0); err != nil {
				log.Fatalf("hammering from tenant %d: %v", i, err)
			}
		}
	}

	info, err := h.RefreshMemInfo()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(info.Render())

	fmt.Println()
	if bad := h.Audit(); len(bad) != 0 {
		fmt.Println("AUDIT FAILED:")
		for _, b := range bad {
			fmt.Println("  -", b)
		}
		os.Exit(1)
	}
	fmt.Printf("audit: all invariants hold across %d VMs (%d flips recorded, all contained)\n",
		*tenants, len(h.Memory().Flips()))
}
