// Command siloz-perf turns `go test -bench` output into a stable JSON
// baseline and gates regressions against one.
//
// Capture mode (default) parses benchmark lines from stdin, keeps the
// minimum ns/op across repeated -count runs of the same benchmark (the
// minimum is the least noisy estimator of the true cost on a shared
// machine), and writes a sorted JSON document:
//
//	go test -bench=. -benchmem -count=3 ./... | siloz-perf -o BENCH_2026-08-08.json
//
// Check mode compares fresh output against a committed baseline and exits
// non-zero if any benchmark regressed beyond the tolerance:
//
//	go test -bench=. -benchmem -count=2 ./... | siloz-perf -check BENCH_2026-08-08.json -tolerance 20
//
// Benchmarks present on only one side are reported but never fail the
// gate: the suite is expected to grow.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's aggregated numbers.
type Result struct {
	// Pkg is the Go package the benchmark lives in.
	Pkg string `json:"pkg"`
	// Name is the benchmark name without the Benchmark prefix or the
	// -GOMAXPROCS suffix.
	Name string `json:"name"`
	// NsPerOp is the minimum ns/op observed across runs.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are from -benchmem; -1 when absent.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Runs counts how many -count repetitions were aggregated.
	Runs int `json:"runs"`
}

// Baseline is the JSON document siloz-perf reads and writes.
type Baseline struct {
	Schema     string   `json:"schema"`
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write the JSON baseline to this file (default stdout)")
	check := flag.String("check", "", "baseline JSON to compare against instead of capturing")
	tolerance := flag.Float64("tolerance", 20, "max allowed ns/op regression in percent (check mode)")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	if *check != "" {
		if err := runCheck(*check, results, *tolerance); err != nil {
			fatal(err)
		}
		return
	}

	doc := Baseline{
		Schema:     "siloz-bench/1",
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		Benchmarks: results,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	} else {
		fmt.Fprintf(os.Stderr, "siloz-perf: %d benchmarks -> %s\n", len(results), *out)
	}
}

// parse reads `go test -bench` output and aggregates repeated runs of the
// same benchmark, keyed by (pkg, name).
func parse(r io.Reader) ([]Result, error) {
	byKey := map[string]*Result{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName[-P] N x ns/op [y B/op z allocs/op [metrics...]]
		if len(fields) < 4 || !hasUnit(fields, "ns/op") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{Pkg: pkg, Name: name, BytesPerOp: -1, AllocsPerOp: -1, Runs: 1}
		found := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				found = true
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			}
		}
		if !found {
			continue
		}
		key := pkg + "." + name
		prev, ok := byKey[key]
		if !ok {
			r := res
			byKey[key] = &r
			continue
		}
		prev.Runs++
		if res.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = res.NsPerOp
		}
		if res.BytesPerOp >= 0 && (prev.BytesPerOp < 0 || res.BytesPerOp < prev.BytesPerOp) {
			prev.BytesPerOp = res.BytesPerOp
		}
		if res.AllocsPerOp >= 0 && (prev.AllocsPerOp < 0 || res.AllocsPerOp < prev.AllocsPerOp) {
			prev.AllocsPerOp = res.AllocsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(byKey))
	for _, r := range byKey {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// hasUnit reports whether any field equals the unit (layout tolerance for
// benchmarks that report custom metrics first).
func hasUnit(fields []string, unit string) bool {
	for _, f := range fields {
		if f == unit {
			return true
		}
	}
	return false
}

// runCheck compares current results against the baseline file and fails on
// any ns/op regression beyond tolerance percent.
func runCheck(path string, current []Result, tolerance float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	baseBy := map[string]Result{}
	for _, r := range base.Benchmarks {
		baseBy[r.Pkg+"."+r.Name] = r
	}
	curBy := map[string]bool{}
	regressions := 0
	for _, cur := range current {
		key := cur.Pkg + "." + cur.Name
		curBy[key] = true
		old, ok := baseBy[key]
		if !ok {
			fmt.Printf("NEW       %-60s %10.1f ns/op\n", key, cur.NsPerOp)
			continue
		}
		delta := 100 * (cur.NsPerOp - old.NsPerOp) / old.NsPerOp
		status := "ok"
		if delta > tolerance {
			status = "REGRESSED"
			regressions++
		}
		fmt.Printf("%-9s %-60s %10.1f -> %10.1f ns/op (%+.1f%%)\n",
			status, key, old.NsPerOp, cur.NsPerOp, delta)
	}
	for key := range baseBy {
		if !curBy[key] {
			fmt.Printf("MISSING   %-60s (in baseline, not in run)\n", key)
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s", regressions, tolerance, path)
	}
	fmt.Printf("siloz-perf: no regression beyond %.0f%% vs %s (%d benchmarks)\n",
		tolerance, path, len(current))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "siloz-perf:", err)
	os.Exit(1)
}
