// Command siloz-sim runs an end-to-end cloud scenario: boot a hypervisor,
// place tenant VMs, run a workload in one while another mounts a Rowhammer
// attack, and report both performance and containment.
//
// The victim workload repeats -reps times (each repetition on a fresh
// memory controller, seeded from -seed and the repetition index) and the
// repetitions fan out onto a -parallel wide worker pool; per-rep results
// print in index order, identical at any pool width.
//
// Usage:
//
//	siloz-sim [-mode siloz|baseline] [-tenants N] [-workload NAME]
//	          [-quick] [-seed N] [-ops N] [-reps N] [-parallel N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/attack"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/experiments"
	"repro/internal/geometry"
	"repro/internal/memctrl"
	"repro/internal/workload"
)

func pickWorkload(name string) (workload.Workload, bool) {
	all := append(workload.AllYCSB(),
		workload.Terasort{}, workload.Memcached{}, workload.Sysbench{})
	all = append(all, workload.SPECSuite()...)
	all = append(all, workload.PARSECSuite()...)
	all = append(all, workload.AllMLC()...)
	for _, w := range all {
		if w.Name() == name {
			return w, true
		}
	}
	return nil, false
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("siloz-sim: ")
	modeFlag := flag.String("mode", "siloz", "hypervisor: siloz or baseline")
	tenants := flag.Int("tenants", 3, "number of tenant VMs (tenant 0 is the attacker)")
	vmGiB := flag.Int("vm-gib", 3, "memory per tenant in GiB")
	wname := flag.String("workload", "redis-a", "workload run by the victim tenant")
	patterns := flag.Int("patterns", 25, "attacker fuzzing patterns")
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	mode := core.ModeSiloz
	if *modeFlag == "baseline" {
		mode = core.ModeBaseline
	}
	w, ok := pickWorkload(*wname)
	if !ok {
		log.Fatalf("unknown workload %q", *wname)
	}
	ops := 50_000
	if common.Quick {
		ops = 15_000
		*patterns = 10
	}
	if common.Ops > 0 {
		ops = common.Ops
	}
	reps := 1
	if common.Reps > 0 {
		reps = common.Reps
	}

	prof := dram.ProfileD()
	h, err := core.Boot(core.Config{
		Profiles:      []dram.Profile{prof},
		EPTProtection: ept.GuardRows,
	}, mode)
	if err != nil {
		log.Fatal(err)
	}
	proc := core.Process{CGroup: "kvm", KVMPrivileged: true}
	vms := make([]*core.VM, *tenants)
	for i := range vms {
		vms[i], err = h.CreateVM(proc, core.VMSpec{
			Name:   fmt.Sprintf("tenant%d", i),
			Socket: 0,
			// Spread across sockets if socket 0 fills up.
			MemoryBytes:   uint64(*vmGiB) * geometry.GiB,
			VCPUs:         4,
			MediatedBytes: 64 * geometry.KiB,
		})
		if err != nil {
			log.Fatalf("creating tenant %d: %v", i, err)
		}
	}
	fmt.Printf("booted %s with %d tenants x %d GiB on %s\n",
		h.Mode(), *tenants, *vmGiB, h.Layout().Geometry())

	// Victim runs the workload; repetitions fan out onto the pool and are
	// reported by index, so output is scheduling-independent.
	victim := vms[len(vms)-1]
	type repResult struct {
		res     memctrl.Result
		hitRate float64
	}
	results := make([]repResult, reps)
	pool := experiments.NewPool(common.Workers())
	err = pool.Map(context.Background(), reps, func(rep int) error {
		seed := experiments.RepSeed(common.Seed, rep)
		ctrl, err := memctrl.New(memctrl.Config{
			Mapper: h.Memory().Mapper(), Timing: memctrl.DDR4_2933(),
			MLPWindow: 10, JitterSeed: seed,
		})
		if err != nil {
			return err
		}
		cache, err := memctrl.NewCache(32*geometry.MiB, 16)
		if err != nil {
			return err
		}
		res, err := workload.RunOnVM(victim, ctrl, cache, w, ops, seed)
		if err != nil {
			return err
		}
		results[rep] = repResult{res: res, hitRate: cache.HitRate()}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for rep, r := range results {
		fmt.Printf("victim %s ran %s [rep %d]: %s (LLC hit %.1f%%)\n",
			victim.Name(), w.Name(), rep, r.res, 100*r.hitRate)
	}

	// Attacker fuzzes.
	fz := attack.NewFuzzer(attack.FuzzerConfig{
		Patterns:          *patterns,
		WindowsPerPattern: 2,
		MaxActsPerWindow:  prof.MaxActsPerWindow * 9 / 10,
		FillPattern:       0xAA,
		Seed:              common.Seed,
	})
	rep, err := fz.Run(&attack.VMTarget{VM: vms[0]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacker %s: %d/%d patterns effective, %d corruptions in its own memory\n",
		vms[0].Name(), rep.EffectivePatterns, rep.PatternsTried, len(rep.Corruptions))

	escaped := 0
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			log.Fatal(err)
		}
		if !(vms[0].OwnsHPA(pa) || vms[0].InDomain(pa)) {
			escaped++
		}
	}
	if escaped > 0 {
		fmt.Printf("RESULT: %d bit flips landed OUTSIDE the attacker's domain — co-located tenants corrupted\n", escaped)
		os.Exit(1)
	}
	fmt.Println("RESULT: every bit flip stayed inside the attacker's own subarray groups")
}
