// Command siloz-serve runs the request-level serving study: multi-tenant
// open-loop KV serving against every deployable Rowhammer defense, in a
// quiet scenario and under control-plane churn (resize, cross-socket live
// migration, defragmentation mid-serving), reporting achieved QPS, latency
// percentiles, and SLO misses per defense. It is a thin front end over the
// `serving-slo` experiment, so its output is byte-identical to
// `siloz-bench -exp serving-slo` at any parallelism.
//
// Usage:
//
//	siloz-serve [-qps N] [-slo-us N] [-duration-ms N] [-defense NAME[,NAME...]]
//	            [-scenario NAME[,NAME...]] [-json] [-quick] [-seed N]
//	            [-reps N] [-parallel N] [-timeout D]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/mitigation"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("siloz-serve: ")
	qps := flag.Float64("qps", 0, "override per-tenant open-loop arrival rate")
	sloUs := flag.Float64("slo-us", 0, "override the per-request latency SLO (microseconds)")
	durationMs := flag.Float64("duration-ms", 0, "override the virtual arrival horizon (milliseconds)")
	defense := flag.String("defense", "", "defense rows, comma-separated (default: all kinds)")
	scenario := flag.String("scenario", "", "scenarios, comma-separated from quiet,churn (default: both)")
	asJSON := flag.Bool("json", false, "emit a JSON document instead of text")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	sc := experiments.DefaultServingSLOConfig()
	if common.Quick {
		sc = experiments.QuickServingSLOConfig()
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			sc.Seed = common.Seed
		}
	})
	if common.Reps > 0 {
		sc.Reps = common.Reps
	}
	if *qps > 0 {
		sc.QPS = *qps
	}
	if *sloUs > 0 {
		sc.SLOUs = *sloUs
	}
	if *durationMs > 0 {
		sc.DurationMs = *durationMs
	}
	if *defense != "" {
		sc.Kinds = nil
		for _, name := range strings.Split(*defense, ",") {
			name = strings.TrimSpace(name)
			if _, err := mitigation.ParseKind(name); err != nil {
				log.Fatal(err)
			}
			sc.Kinds = append(sc.Kinds, name)
		}
	}
	if *scenario != "" {
		sc.Scenarios = nil
		for _, name := range strings.Split(*scenario, ",") {
			name = strings.TrimSpace(name)
			if name != "quiet" && name != "churn" {
				log.Fatalf("unknown scenario %q (want quiet or churn)", name)
			}
			sc.Scenarios = append(sc.Scenarios, name)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{
		ServingSLO: sc,
		Pool:       experiments.NewPool(common.Workers()),
	}
	e, ok := experiments.Get("serving-slo")
	if !ok {
		log.Fatal("serving-slo experiment not registered")
	}
	start := time.Now()
	r, err := e.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "==> %s (%.1fs)\n", r.Name, time.Since(start).Seconds())
	if *asJSON {
		out, err := experiments.RenderJSON(r)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
	} else {
		fmt.Print(experiments.RenderText(r))
	}
	if !r.Passed() {
		log.Fatal("serving-slo has failing checks")
	}
}
