// Command siloz-blacksmith runs the extended Blacksmith Rowhammer fuzzer
// (§7) from inside a tenant VM against a Siloz or baseline hypervisor, then
// reports both the attacker's view (corruptions it can read back) and the
// omniscient ground truth (where every bit flip physically landed).
//
// With -reps N the whole campaign repeats N times on independent
// hypervisors, each seeded from -seed and the repetition index; the
// repetitions fan out onto a -parallel wide worker pool and report in
// index order, identical at any pool width.
//
// Usage:
//
//	siloz-blacksmith [-mode siloz|baseline] [-dimm A..F] [-patterns N]
//	                 [-quick] [-seed N] [-ops N] [-reps N] [-parallel N] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/attack"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/experiments"
	"repro/internal/geometry"
)

// jsonReport is the machine-readable campaign summary (-json), one per rep.
type jsonReport struct {
	Mode              string `json:"mode"`
	DIMM              string `json:"dimm"`
	Rep               int    `json:"rep"`
	Seed              int64  `json:"seed"`
	PatternsTried     int    `json:"patterns_tried"`
	EffectivePatterns int    `json:"effective_patterns"`
	Corruptions       int    `json:"corruptions"`
	BestPattern       string `json:"best_pattern,omitempty"`
	FlipsInAttacker   int    `json:"flips_in_attacker"`
	FlipsInVictim     int    `json:"flips_in_victim"`
	FlipsElsewhere    int    `json:"flips_elsewhere"`
	Contained         bool   `json:"contained"`
}

// campaign boots a fresh hypervisor, fuzzes from the attacker VM, and
// classifies every flip. Each repetition is fully independent, which is
// what makes fanning reps across the pool safe.
func campaign(mode core.Mode, prof dram.Profile, vmGiB, patterns, windows, maxActs int, seed int64) (jsonReport, error) {
	rep := jsonReport{Mode: mode.String(), DIMM: prof.Name, Seed: seed}
	h, err := core.Boot(core.Config{
		Profiles:      []dram.Profile{prof},
		EPTProtection: ept.GuardRows,
	}, mode)
	if err != nil {
		return rep, err
	}
	proc := core.Process{CGroup: "kvm", KVMPrivileged: true}
	attacker, err := h.CreateVM(proc, core.VMSpec{
		Name: "attacker", Socket: 0, MemoryBytes: uint64(vmGiB) * geometry.GiB,
	})
	if err != nil {
		return rep, err
	}
	victim, err := h.CreateVM(proc, core.VMSpec{
		Name: "victim", Socket: 0, MemoryBytes: uint64(vmGiB) * geometry.GiB,
	})
	if err != nil {
		return rep, err
	}
	fz := attack.NewFuzzer(attack.FuzzerConfig{
		Patterns:          patterns,
		WindowsPerPattern: windows,
		MaxActsPerWindow:  maxActs,
		FillPattern:       0xAA,
		Seed:              seed,
	})
	fr, err := fz.Run(&attack.VMTarget{VM: attacker})
	if err != nil {
		return rep, err
	}
	rep.PatternsTried = fr.PatternsTried
	rep.EffectivePatterns = fr.EffectivePatterns
	rep.Corruptions = len(fr.Corruptions)
	rep.BestPattern = fr.BestPattern
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			return rep, err
		}
		switch {
		case attacker.OwnsHPA(pa) || attacker.InDomain(pa):
			rep.FlipsInAttacker++
		case victim.OwnsHPA(pa) || victim.InDomain(pa):
			rep.FlipsInVictim++
		default:
			rep.FlipsElsewhere++
		}
	}
	rep.Contained = rep.FlipsInVictim+rep.FlipsElsewhere == 0
	return rep, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("siloz-blacksmith: ")
	modeFlag := flag.String("mode", "siloz", "hypervisor under attack: siloz or baseline")
	dimm := flag.String("dimm", "A", "DIMM profile to populate the server with (A-F)")
	patterns := flag.Int("patterns", 40, "fuzzing patterns to try")
	windows := flag.Int("windows", 2, "refresh windows hammered per pattern")
	vmGiB := flag.Int("vm-gib", 6, "attacker VM memory in GiB")
	asJSON := flag.Bool("json", false, "emit a machine-readable JSON report per rep")
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	mode := core.ModeSiloz
	switch *modeFlag {
	case "siloz":
	case "baseline":
		mode = core.ModeBaseline
	default:
		log.Fatalf("unknown mode %q", *modeFlag)
	}
	var prof dram.Profile
	found := false
	for _, p := range dram.EvaluationProfiles() {
		if p.Name == *dimm {
			prof, found = p, true
		}
	}
	if !found {
		log.Fatalf("unknown DIMM %q (want A-F)", *dimm)
	}

	if common.Quick {
		*patterns = 10
		*windows = 1
	}
	// -ops overrides the hammer budget per refresh window.
	maxActs := prof.MaxActsPerWindow * 9 / 10
	if common.Ops > 0 {
		maxActs = common.Ops
	}
	reps := 1
	if common.Reps > 0 {
		reps = common.Reps
	}

	if !*asJSON {
		fmt.Printf("hypervisor: %s, DIMM profile %s, attacker VM %d GiB, victim VM %d GiB, %d rep(s)\n",
			mode, prof.Name, *vmGiB, *vmGiB, reps)
	}

	reports := make([]jsonReport, reps)
	pool := experiments.NewPool(common.Workers())
	err := pool.Map(context.Background(), reps, func(i int) error {
		rep, err := campaign(mode, prof, *vmGiB, *patterns, *windows, maxActs,
			experiments.RepSeed(common.Seed, i))
		if err != nil {
			return err
		}
		rep.Rep = i
		reports[i] = rep
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	contained := true
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, rep := range reports {
		if *asJSON {
			if err := enc.Encode(rep); err != nil {
				log.Fatal(err)
			}
		} else {
			fmt.Printf("rep %d attacker view: %d/%d patterns effective, %d corruptions observed (first: %s)\n",
				rep.Rep, rep.EffectivePatterns, rep.PatternsTried, rep.Corruptions, rep.BestPattern)
			fmt.Printf("rep %d ground truth:  %d flips in attacker domain, %d in victim, %d elsewhere (host)\n",
				rep.Rep, rep.FlipsInAttacker, rep.FlipsInVictim, rep.FlipsElsewhere)
		}
		contained = contained && rep.Contained
	}
	if !contained {
		if !*asJSON {
			fmt.Println("RESULT: inter-VM Rowhammer SUCCEEDED — isolation violated")
		}
		os.Exit(1)
	}
	if !*asJSON {
		fmt.Println("RESULT: all flips contained to the attacker's own subarray groups")
	}
}
