// Command siloz-blacksmith runs the extended Blacksmith Rowhammer fuzzer
// (§7) from inside a tenant VM against a Siloz or baseline hypervisor, then
// reports both the attacker's view (corruptions it can read back) and the
// omniscient ground truth (where every bit flip physically landed).
//
// Usage:
//
//	siloz-blacksmith [-mode siloz|baseline] [-dimm A..F] [-patterns N] [-seed N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
)

// jsonReport is the machine-readable campaign summary (-json).
type jsonReport struct {
	Mode              string `json:"mode"`
	DIMM              string `json:"dimm"`
	PatternsTried     int    `json:"patterns_tried"`
	EffectivePatterns int    `json:"effective_patterns"`
	Corruptions       int    `json:"corruptions"`
	BestPattern       string `json:"best_pattern,omitempty"`
	FlipsInAttacker   int    `json:"flips_in_attacker"`
	FlipsInVictim     int    `json:"flips_in_victim"`
	FlipsElsewhere    int    `json:"flips_elsewhere"`
	Contained         bool   `json:"contained"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("siloz-blacksmith: ")
	modeFlag := flag.String("mode", "siloz", "hypervisor under attack: siloz or baseline")
	dimm := flag.String("dimm", "A", "DIMM profile to populate the server with (A-F)")
	patterns := flag.Int("patterns", 40, "fuzzing patterns to try")
	windows := flag.Int("windows", 2, "refresh windows hammered per pattern")
	vmGiB := flag.Int("vm-gib", 6, "attacker VM memory in GiB")
	seed := flag.Int64("seed", 1, "fuzzer seed")
	asJSON := flag.Bool("json", false, "emit a machine-readable JSON report")
	flag.Parse()

	mode := core.ModeSiloz
	switch *modeFlag {
	case "siloz":
	case "baseline":
		mode = core.ModeBaseline
	default:
		log.Fatalf("unknown mode %q", *modeFlag)
	}
	var prof dram.Profile
	found := false
	for _, p := range dram.EvaluationProfiles() {
		if p.Name == *dimm {
			prof, found = p, true
		}
	}
	if !found {
		log.Fatalf("unknown DIMM %q (want A-F)", *dimm)
	}

	h, err := core.Boot(core.Config{
		Profiles:      []dram.Profile{prof},
		EPTProtection: ept.GuardRows,
	}, mode)
	if err != nil {
		log.Fatal(err)
	}
	proc := core.Process{CGroup: "kvm", KVMPrivileged: true}
	attacker, err := h.CreateVM(proc, core.VMSpec{
		Name: "attacker", Socket: 0, MemoryBytes: uint64(*vmGiB) * geometry.GiB,
	})
	if err != nil {
		log.Fatal(err)
	}
	victim, err := h.CreateVM(proc, core.VMSpec{
		Name: "victim", Socket: 0, MemoryBytes: uint64(*vmGiB) * geometry.GiB,
	})
	if err != nil {
		log.Fatal(err)
	}

	if !*asJSON {
		fmt.Printf("hypervisor: %s, DIMM profile %s, attacker VM %d GiB, victim VM %d GiB\n",
			h.Mode(), prof.Name, *vmGiB, *vmGiB)
	}
	fz := attack.NewFuzzer(attack.FuzzerConfig{
		Patterns:          *patterns,
		WindowsPerPattern: *windows,
		MaxActsPerWindow:  prof.MaxActsPerWindow * 9 / 10,
		FillPattern:       0xAA,
		Seed:              *seed,
	})
	rep, err := fz.Run(&attack.VMTarget{VM: attacker})
	if err != nil {
		log.Fatal(err)
	}
	if !*asJSON {
		fmt.Printf("attacker view: %d/%d patterns effective, %d corruptions observed (first: %s)\n",
			rep.EffectivePatterns, rep.PatternsTried, len(rep.Corruptions), rep.BestPattern)
	}

	inside, victimHits, elsewhere := 0, 0, 0
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case attacker.OwnsHPA(pa) || attacker.InDomain(pa):
			inside++
		case victim.OwnsHPA(pa) || victim.InDomain(pa):
			victimHits++
		default:
			elsewhere++
		}
	}
	contained := victimHits+elsewhere == 0
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{
			Mode: h.Mode().String(), DIMM: prof.Name,
			PatternsTried: rep.PatternsTried, EffectivePatterns: rep.EffectivePatterns,
			Corruptions: len(rep.Corruptions), BestPattern: rep.BestPattern,
			FlipsInAttacker: inside, FlipsInVictim: victimHits,
			FlipsElsewhere: elsewhere, Contained: contained,
		}); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("ground truth:  %d flips in attacker domain, %d in victim, %d elsewhere (host)\n",
			inside, victimHits, elsewhere)
	}
	if !contained {
		if !*asJSON {
			fmt.Println("RESULT: inter-VM Rowhammer SUCCEEDED — isolation violated")
		}
		os.Exit(1)
	}
	if !*asJSON {
		fmt.Println("RESULT: all flips contained to the attacker's own subarray groups")
	}
}
