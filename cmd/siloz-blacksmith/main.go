// Command siloz-blacksmith runs the extended Blacksmith Rowhammer fuzzer
// (§7) from inside a tenant VM against a Siloz or baseline hypervisor, then
// reports both the attacker's view (corruptions it can read back) and the
// omniscient ground truth (where every bit flip physically landed).
//
// With -reps N the whole campaign repeats N times on independent
// hypervisors, each seeded from -seed and the repetition index; the
// repetitions fan out onto a -parallel wide worker pool and report in
// index order, identical at any pool width.
//
// Usage:
//
//	siloz-blacksmith [-mode siloz|baseline] [-mitigation kind] [-dimm A..F]
//	                 [-patterns N] [-quick] [-seed N] [-ops N] [-reps N]
//	                 [-parallel N] [-json]
//
// With -mitigation, the machine deploys the named Rowhammer defense (none,
// para, silver-bullet, catt, siloz) and the hypervisor mode follows it; the
// report gains the defense's overhead ledger, and flips absorbed by guard
// capacity count as contained.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/attack"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/experiments"
	"repro/internal/geometry"
	"repro/internal/mitigation"
)

// jsonReport is the machine-readable campaign summary (-json), one per rep.
type jsonReport struct {
	Mode              string `json:"mode"`
	Mitigation        string `json:"mitigation,omitempty"`
	DIMM              string `json:"dimm"`
	Rep               int    `json:"rep"`
	Seed              int64  `json:"seed"`
	PatternsTried     int    `json:"patterns_tried"`
	EffectivePatterns int    `json:"effective_patterns"`
	Corruptions       int    `json:"corruptions"`
	BestPattern       string `json:"best_pattern,omitempty"`
	FlipsInAttacker   int    `json:"flips_in_attacker"`
	FlipsInVictim     int    `json:"flips_in_victim"`
	FlipsInGuards     int    `json:"flips_in_guards,omitempty"`
	FlipsElsewhere    int    `json:"flips_elsewhere"`
	Contained         bool   `json:"contained"`
	Refreshes         int    `json:"refreshes,omitempty"`
	BlockedMiB        uint64 `json:"blocked_mib,omitempty"`
}

// campaign boots a fresh hypervisor, fuzzes from the attacker VM, and
// classifies every flip. Each repetition is fully independent, which is
// what makes fanning reps across the pool safe.
func campaign(mode core.Mode, spec *mitigation.Spec, prof dram.Profile, vmGiB, patterns, windows, maxActs int, seed int64) (jsonReport, error) {
	rep := jsonReport{Mode: mode.String(), DIMM: prof.Name, Seed: seed}
	cc := core.Config{
		Profiles:      []dram.Profile{prof},
		EPTProtection: ept.GuardRows,
	}
	var h *core.Hypervisor
	var err error
	if spec != nil {
		// The deployed defense decides the hypervisor mode.
		cc.Mitigation = *spec
		h, err = core.BootMitigated(cc)
	} else {
		h, err = core.Boot(cc, mode)
	}
	if err != nil {
		return rep, err
	}
	if spec != nil {
		rep.Mode = h.Mode().String()
		rep.Mitigation = spec.Name()
	}
	proc := core.Process{CGroup: "kvm", KVMPrivileged: true}
	attacker, err := h.CreateVM(proc, core.VMSpec{
		Name: "attacker", Socket: 0, MemoryBytes: uint64(vmGiB) * geometry.GiB,
	})
	if err != nil {
		return rep, err
	}
	victim, err := h.CreateVM(proc, core.VMSpec{
		Name: "victim", Socket: 0, MemoryBytes: uint64(vmGiB) * geometry.GiB,
	})
	if err != nil {
		return rep, err
	}
	fz := attack.NewFuzzer(attack.FuzzerConfig{
		Patterns:          patterns,
		WindowsPerPattern: windows,
		MaxActsPerWindow:  maxActs,
		FillPattern:       0xAA,
		Seed:              seed,
	})
	target := attack.Target(&attack.VMTarget{VM: attacker})
	if spec != nil && spec.HasRowDefense() {
		// Defended controllers observe individual ACT commands; chunk the
		// fuzzer's bursts so the defense gets its real reaction window.
		target = attack.Chunked(target, 1000)
	}
	fr, err := fz.Run(target)
	if err != nil {
		return rep, err
	}
	rep.PatternsTried = fr.PatternsTried
	rep.EffectivePatterns = fr.EffectivePatterns
	rep.Corruptions = len(fr.Corruptions)
	rep.BestPattern = fr.BestPattern
	guard := map[uint64]bool{}
	for _, vm := range []*core.VM{attacker, victim} {
		for _, pa := range vm.GuardPages() {
			guard[pa] = true
		}
	}
	offlined := h.OfflinedRanges()
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			return rep, err
		}
		switch {
		case attacker.OwnsHPA(pa) || attacker.InDomain(pa):
			rep.FlipsInAttacker++
		case victim.OwnsHPA(pa) || victim.InDomain(pa):
			rep.FlipsInVictim++
		case guard[pa&^uint64(geometry.PageSize2M-1)]:
			rep.FlipsInGuards++
		default:
			absorbed := false
			for _, r := range offlined {
				if r.Contains(pa) {
					absorbed = true
					break
				}
			}
			if absorbed {
				rep.FlipsInGuards++
			} else {
				rep.FlipsElsewhere++
			}
		}
	}
	rep.Contained = rep.FlipsInVictim+rep.FlipsElsewhere == 0
	ov := h.Memory().DefenseOverhead()
	rep.Refreshes = ov.NeighborRefreshes
	rep.BlockedMiB = (h.MitigationBlockedBytes() + ov.BlockedBytes) / geometry.MiB
	return rep, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("siloz-blacksmith: ")
	modeFlag := flag.String("mode", "siloz", "hypervisor under attack: siloz or baseline")
	mitFlag := flag.String("mitigation", "", "deploy a Rowhammer defense instead of -mode: none, para, silver-bullet, catt, or siloz")
	dimm := flag.String("dimm", "A", "DIMM profile to populate the server with (A-F)")
	patterns := flag.Int("patterns", 40, "fuzzing patterns to try")
	windows := flag.Int("windows", 2, "refresh windows hammered per pattern")
	vmGiB := flag.Int("vm-gib", 6, "attacker VM memory in GiB")
	asJSON := flag.Bool("json", false, "emit a machine-readable JSON report per rep")
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	mode := core.ModeSiloz
	switch *modeFlag {
	case "siloz":
	case "baseline":
		mode = core.ModeBaseline
	default:
		log.Fatalf("unknown mode %q", *modeFlag)
	}
	var spec *mitigation.Spec
	if *mitFlag != "" {
		k, err := mitigation.ParseKind(*mitFlag)
		if err != nil {
			log.Fatal(err)
		}
		spec = &mitigation.Spec{Kind: k, Seed: common.Seed}
		// The defense decides the mode (core.BootMitigated); keep the
		// banner honest.
		if spec.IsolatesSubarrayGroups() {
			mode = core.ModeSiloz
		} else {
			mode = core.ModeBaseline
		}
	}
	var prof dram.Profile
	found := false
	for _, p := range dram.EvaluationProfiles() {
		if p.Name == *dimm {
			prof, found = p, true
		}
	}
	if !found {
		log.Fatalf("unknown DIMM %q (want A-F)", *dimm)
	}

	if common.Quick {
		*patterns = 10
		*windows = 1
	}
	// -ops overrides the hammer budget per refresh window.
	maxActs := prof.MaxActsPerWindow * 9 / 10
	if common.Ops > 0 {
		maxActs = common.Ops
	}
	reps := 1
	if common.Reps > 0 {
		reps = common.Reps
	}

	if !*asJSON {
		deployed := "no mitigation"
		if spec != nil {
			deployed = "mitigation " + spec.Name()
		}
		fmt.Printf("hypervisor: %s, %s, DIMM profile %s, attacker VM %d GiB, victim VM %d GiB, %d rep(s)\n",
			mode, deployed, prof.Name, *vmGiB, *vmGiB, reps)
	}

	reports := make([]jsonReport, reps)
	pool := experiments.NewPool(common.Workers())
	err := pool.Map(context.Background(), reps, func(i int) error {
		rep, err := campaign(mode, spec, prof, *vmGiB, *patterns, *windows, maxActs,
			experiments.RepSeed(common.Seed, i))
		if err != nil {
			return err
		}
		rep.Rep = i
		reports[i] = rep
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	contained := true
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, rep := range reports {
		if *asJSON {
			if err := enc.Encode(rep); err != nil {
				log.Fatal(err)
			}
		} else {
			fmt.Printf("rep %d attacker view: %d/%d patterns effective, %d corruptions observed (first: %s)\n",
				rep.Rep, rep.EffectivePatterns, rep.PatternsTried, rep.Corruptions, rep.BestPattern)
			fmt.Printf("rep %d ground truth:  %d flips in attacker domain, %d in victim, %d in guard capacity, %d elsewhere (host)\n",
				rep.Rep, rep.FlipsInAttacker, rep.FlipsInVictim, rep.FlipsInGuards, rep.FlipsElsewhere)
			if rep.Mitigation != "" {
				fmt.Printf("rep %d overhead:      %d defense refreshes, %d MiB capacity blocked\n",
					rep.Rep, rep.Refreshes, rep.BlockedMiB)
			}
		}
		contained = contained && rep.Contained
	}
	if !contained {
		if !*asJSON {
			fmt.Println("RESULT: inter-VM Rowhammer SUCCEEDED — isolation violated")
		}
		os.Exit(1)
	}
	if !*asJSON {
		if spec != nil {
			fmt.Println("RESULT: all flips contained to the attacker's own memory and sacrificial guard capacity")
		} else {
			fmt.Println("RESULT: all flips contained to the attacker's own subarray groups")
		}
	}
}
