// Command siloz-bench regenerates the paper's tables and figures (§7) by
// dispatching the experiment registry: every table and figure is an
// experiments.Experiment, scheduled onto a bounded worker pool that fans
// out both across experiments and across each experiment's repetitions.
// Results stream to stdout in registry order — bit-for-bit identical no
// matter the pool width — while progress and timing go to stderr.
//
// Run `siloz-bench -list` for the experiment names.
//
// Usage:
//
//	siloz-bench [-exp NAME[,NAME...]] [-json] [-quick] [-seed N] [-ops N]
//	            [-reps N] [-parallel N] [-timeout D] [-csv DIR] [-patterns N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("siloz-bench: ")
	exp := flag.String("exp", "all", "experiment: all, one name, or a comma-separated list")
	list := flag.Bool("list", false, "list experiment names and exit")
	asJSON := flag.Bool("json", false, "emit one JSON document per experiment instead of text")
	csvDir := flag.String("csv", "", "directory to also write per-experiment CSV files into")
	patterns := flag.Int("patterns", 0, "override fuzzing patterns per DIMM")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = none)")
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	perf := experiments.DefaultPerfConfig()
	if common.Quick {
		perf = experiments.QuickPerfConfig()
	}
	perf.Seed = common.Seed
	if common.Ops > 0 {
		perf.Ops = common.Ops
	}
	if common.Reps > 0 {
		perf.Reps = common.Reps
	}
	sec := experiments.DefaultSecurityConfig()
	mig := experiments.DefaultMigrationConfig()
	bal := experiments.DefaultBalloonConfig()
	hot := experiments.DefaultHotplugConfig()
	rel := experiments.DefaultEPTRelocConfig()
	fl := experiments.DefaultFleetConfig()
	lca := experiments.DefaultLifecycleAttackConfig()
	mat := experiments.DefaultMitigationMatrixConfig()
	sslo := experiments.DefaultServingSLOConfig()
	if common.Quick {
		mig = experiments.QuickMigrationConfig()
		bal = experiments.QuickBalloonConfig()
		hot = experiments.QuickHotplugConfig()
		rel = experiments.QuickEPTRelocConfig()
		fl = experiments.QuickFleetConfig()
		lca = experiments.QuickLifecycleAttackConfig()
		mat = experiments.QuickMitigationMatrixConfig()
		sslo = experiments.QuickServingSLOConfig()
	}
	// The security, migration, ballooning and hotplug campaigns keep their
	// own default seeds unless -seed is given explicitly, so default outputs
	// match earlier releases.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			sec.Seed = common.Seed
			mig.Seed = common.Seed
			bal.Seed = common.Seed
			hot.Seed = common.Seed
			rel.Seed = common.Seed
			fl.Seed = common.Seed
			lca.Seed = common.Seed
			mat.Seed = common.Seed
			sslo.Seed = common.Seed
		}
	})
	if *patterns > 0 {
		sec.Patterns = *patterns
	}

	var exps []experiments.Experiment
	if *exp == "all" {
		exps = experiments.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			e, ok := experiments.Get(name)
			if !ok {
				log.Fatalf("unknown experiment %q (run -list for names)", name)
			}
			exps = append(exps, e)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{
		Perf:       perf,
		Security:   sec,
		Migration:  mig,
		Balloon:    bal,
		Hotplug:    hot,
		EPTReloc:   rel,
		Fleet:      fl,
		Lifecycle:  lca,
		Matrix:     mat,
		ServingSLO: sslo,
		Pool:       experiments.NewPool(common.Workers()),
	}

	failed := 0
	onDone := func(r *experiments.Result, elapsed time.Duration) {
		fmt.Fprintf(os.Stderr, "==> %s (%.1fs)\n", r.Name, elapsed.Seconds())
		if *asJSON {
			out, err := experiments.RenderJSON(r)
			if err != nil {
				log.Fatal(err)
			}
			os.Stdout.Write(out)
		} else {
			fmt.Print(experiments.RenderText(r))
			fmt.Println()
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, r.Name+".csv")
			if err := os.WriteFile(path, []byte(experiments.RenderCSV(r)), 0o644); err != nil {
				log.Fatalf("writing %s: %v", path, err)
			}
			fmt.Fprintf(os.Stderr, "    wrote %s\n", path)
		}
		if !r.Passed() {
			failed++
		}
	}
	start := time.Now()
	if _, err := experiments.RunAll(ctx, exps, cfg, onDone); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done: %d experiments in %.1fs (parallel=%d)\n",
		len(exps), time.Since(start).Seconds(), cfg.Pool.Width())
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d experiment(s) have failing checks\n", failed)
	}
}
