// Command siloz-bench regenerates the paper's tables and figures (§7):
//
//	table3      bit-flip containment across DIMMs A-F (Table 3)
//	ept         EPT bit-flip prevention (§7.1)
//	fig4        baseline-normalized execution time (Figure 4)
//	fig5        baseline-normalized throughput (Figure 5)
//	fig67       subarray-size sensitivity (Figures 6 and 7)
//	blp         bank-level parallelism ablation (§4.1)
//	overhead    DRAM reservation comparison vs guard-row schemes (§3, §5.4)
//	softrefresh software-refresh deadline experiment (§8.3)
//	remaps      media-to-internal remap handling sweep (§6)
//	gbpages     1 GiB page analysis (§4.2)
//	ecc         ECC correction/miscorrection and side channel (§2.5, §3)
//	fragmentation  whole-group provisioning waste and SNC (§8.1)
//	ddr5        DDR4 vs DDR5 group formation (§8.2)
//	drama       DRAM timing side channel and bank partitioning (§8.4)
//	actrates    peak per-row activation rates of workloads vs thresholds (§1)
//	zebram      executable guard-row scheme comparison (§3)
//	all         everything above
//
// Usage:
//
//	siloz-bench [-exp NAME] [-quick] [-ops N] [-reps N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/geometry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("siloz-bench: ")
	exp := flag.String("exp", "all", "experiment to run")
	quick := flag.Bool("quick", false, "scaled-down parameters for a fast pass")
	ops := flag.Int("ops", 0, "override operations per performance run")
	reps := flag.Int("reps", 0, "override repetitions per configuration")
	patterns := flag.Int("patterns", 0, "override fuzzing patterns per DIMM")
	csvDir := flag.String("csv", "", "directory to also write per-figure CSV files into")
	flag.Parse()

	writeCSV := func(name string, fig experiments.Figure) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		fmt.Printf("    wrote %s\n", path)
	}

	perf := experiments.DefaultPerfConfig()
	if *quick {
		perf = experiments.QuickPerfConfig()
	}
	if *ops > 0 {
		perf.Ops = *ops
	}
	if *reps > 0 {
		perf.Reps = *reps
	}
	sec := experiments.DefaultSecurityConfig()
	if *patterns > 0 {
		sec.Patterns = *patterns
	}

	run := func(name string, fn func() error) {
		start := time.Now()
		fmt.Printf("==> %s\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("    (%.1fs)\n\n", time.Since(start).Seconds())
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table3") {
		run("Table 3: hammering containment", func() error {
			res, err := experiments.Table3Containment(sec)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			if res.Contained() {
				fmt.Println("containment: PASS (no flip escaped any subarray group)")
			} else {
				fmt.Println("containment: FAIL")
			}
			return nil
		})
	}
	if want("ept") {
		run("EPT bit-flip prevention (§7.1)", func() error {
			res, err := experiments.EPTProtection(sec)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	}
	if want("fig4") {
		run("Figure 4: execution time", func() error {
			fig, err := experiments.Fig4ExecutionTime(perf)
			if err != nil {
				return err
			}
			fmt.Print(fig.Render())
			fmt.Printf("within ±0.5%%: %v\n", fig.WithinHalfPercent())
			writeCSV("fig4", fig)
			return nil
		})
	}
	if want("fig5") {
		run("Figure 5: throughput", func() error {
			fig, err := experiments.Fig5Throughput(perf)
			if err != nil {
				return err
			}
			fmt.Print(fig.Render())
			fmt.Printf("within ±0.5%%: %v\n", fig.WithinHalfPercent())
			writeCSV("fig5", fig)
			return nil
		})
	}
	if want("fig67") {
		run("Figures 6+7: subarray size sensitivity", func() error {
			res, err := experiments.Fig6And7SizeSensitivity(perf)
			if err != nil {
				return err
			}
			names := []string{"fig6-siloz512", "fig6-siloz2048", "fig7-siloz512", "fig7-siloz2048"}
			for i, f := range []experiments.Figure{res.Time512, res.Time2048, res.Tput512, res.Tput2048} {
				fmt.Print(f.Render())
				fmt.Println()
				writeCSV(names[i], f)
			}
			return nil
		})
	}
	if want("blp") {
		run("Bank-level parallelism ablation (§4.1)", func() error {
			res, err := experiments.BankLevelParallelism(geometry.Default(), 200_000)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	}
	if want("overhead") {
		run("DRAM reservation comparison (§3, §5.4)", func() error {
			fmt.Print(experiments.RenderOverheads(experiments.OverheadComparison(geometry.Default())))
			return nil
		})
	}
	if want("softrefresh") {
		run("Software refresh deadlines (§8.3)", func() error {
			task, tick := experiments.SoftRefreshComparison()
			fmt.Printf("task-scheduled: %s\n", task)
			fmt.Printf("tick-interrupt: %s\n", tick)
			fmt.Println("conclusion: neither meets 1 ms deadlines reliably; Siloz uses guard rows instead")
			return nil
		})
	}
	if want("remaps") {
		run("Remap handling sweep (§6)", func() error {
			rows, err := experiments.RemapHandling()
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderRemaps(rows))
			return nil
		})
	}
	if want("gbpages") {
		run("1 GiB page analysis (§4.2)", func() error {
			res, err := experiments.GiBPages(geometry.Default())
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	}
	if want("ecc") {
		run("ECC under Rowhammer (§2.5, §3)", func() error {
			res, err := experiments.ECCStudy()
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	}
	if want("fragmentation") {
		run("Memory fragmentation and SNC (§8.1)", func() error {
			rows, err := experiments.FragmentationStudy()
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFragmentation(rows))
			return nil
		})
	}
	if want("ddr5") {
		run("DDR4 vs DDR5 group formation (§8.2)", func() error {
			rows, err := experiments.DDR5Comparison()
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderDDR5(rows))
			return nil
		})
	}
	if want("drama") {
		run("DRAM timing side channel (§8.4)", func() error {
			rows, err := experiments.DRAMAStudy()
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderDRAMA(rows))
			return nil
		})
	}
	if want("zebram") {
		run("Guard-row schemes vs subarray groups (§3)", func() error {
			rows, err := experiments.ZebRAMComparison()
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderZebRAM(rows))
			return nil
		})
	}
	if want("actrates") {
		run("Peak per-row activation rates (§1)", func() error {
			cfg := perf
			if cfg.Ops < 250_000 {
				cfg.Ops = 250_000 // need full refresh windows of traffic
			}
			rows, err := experiments.ActivationRates(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderActRates(rows))
			return nil
		})
	}
}
