// Command siloz-fleet runs the fleet-scale control-plane study: a
// multi-host cluster of Siloz hypervisors under a traced churn workload —
// VM arrivals, resizes, and departures — with admission bin-packing across
// subarray-group nodes, a migration scheduler draining hot hosts and
// defragmenting cold ones, and a fleet-wide isolation audit after every
// round. It is a thin front end over the `fleet-churn` experiment, so its
// output is byte-identical to `siloz-bench -exp fleet-churn` at any
// parallelism.
//
// Usage:
//
//	siloz-fleet [-hosts N] [-rounds N] [-arrivals N] [-policy NAME[,NAME...]]
//	            [-json] [-quick] [-seed N] [-parallel N] [-timeout D]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/fleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("siloz-fleet: ")
	hosts := flag.Int("hosts", 0, "override simulated host count")
	rounds := flag.Int("rounds", 0, "override churn rounds")
	arrivals := flag.Int("arrivals", 0, "override VM arrivals per round")
	policy := flag.String("policy", "", "placement policies, comma-separated (default: all)")
	asJSON := flag.Bool("json", false, "emit a JSON document instead of text")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	fc := experiments.DefaultFleetConfig()
	if common.Quick {
		fc = experiments.QuickFleetConfig()
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			fc.Seed = common.Seed
		}
	})
	if *hosts > 0 {
		fc.Hosts = *hosts
	}
	if *rounds > 0 {
		fc.Rounds = *rounds
	}
	if *arrivals > 0 {
		fc.ArrivalsPerRound = *arrivals
	}
	if *policy != "" {
		fc.Policies = nil
		for _, name := range strings.Split(*policy, ",") {
			name = strings.TrimSpace(name)
			if _, err := fleet.PolicyByName(name); err != nil {
				log.Fatal(err)
			}
			fc.Policies = append(fc.Policies, name)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{
		Fleet: fc,
		Pool:  experiments.NewPool(common.Workers()),
	}
	e, ok := experiments.Get("fleet-churn")
	if !ok {
		log.Fatal("fleet-churn experiment not registered")
	}
	start := time.Now()
	r, err := e.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "==> %s (%.1fs)\n", r.Name, time.Since(start).Seconds())
	if *asJSON {
		out, err := experiments.RenderJSON(r)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
	} else {
		fmt.Print(experiments.RenderText(r))
	}
	if !r.Passed() {
		log.Fatal("fleet-churn has failing checks")
	}
}
